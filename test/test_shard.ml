(* Tests for sharded, mergeable synopses (Synopsis_shard): K-shard builds
   must merge into the exact monolithic draw, incremental deltas must be
   bit-identical to from-scratch re-draws of the post-delta tables, and
   the v2 per-shard store format must round-trip and reject a corrupted
   or truncated shard segment by name. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let table_a =
  lazy (table_of_counts (List.init 12 (fun i -> (i, 3 + (i mod 5)))))

let table_b =
  lazy (table_of_counts (List.init 9 (fun i -> (i, 2 + (i mod 4)))))

let base = 0x5eed5eed5eed5eedL

let profile () = Csdl.Profile.of_tables (Lazy.force table_a) "k" (Lazy.force table_b) "k"

let resolve ?(theta = 0.5) ?(spec = Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff)
    profile =
  Csdl.Budget.resolve spec ~theta profile

(* Bit-identity of whole synopses, via the canonical serializer: equal
   encodings are equal resolved budgets, samples, sentry bookkeeping and
   [N'], bit for bit. *)
let encode_synopsis synopsis =
  Csdl.Synopsis_store.encode
    [
      {
        Csdl.Synopsis_store.key = "s";
        table_a = "a";
        table_b = "b";
        swapped = false;
        fingerprint_a = 0L;
        fingerprint_b = 0L;
        prng_key = "";
        shards = 1;
        sentinels = [];
        synopsis;
      };
    ]

let check_synopsis_equal what expected actual =
  Alcotest.(check bool)
    what true
    (String.equal (encode_synopsis expected) (encode_synopsis actual))

let preds =
  [
    (Predicate.True, Predicate.True);
    ( Predicate.Compare (Predicate.Lt, "attr", Value.Int 4),
      Predicate.Compare (Predicate.Gt, "attr", Value.Int 0) );
    (Predicate.Compare (Predicate.Le, "attr", Value.Int 2), Predicate.True);
  ]

let check_flat_equal what reference flat =
  List.iter
    (fun (pred_a, pred_b) ->
      let e = Csdl.Estimate.run_flat ~pred_a ~pred_b reference
      and f = Csdl.Estimate.run_flat ~pred_a ~pred_b flat in
      if e <> f then Alcotest.failf "%s: flat %h <> reference %h" what f e)
    preds

(* ---------------- build / merge ---------------- *)

let test_merge_matches_monolithic () =
  let profile = profile () in
  let resolved = resolve profile in
  let reference = Csdl.Synopsis.draw_base ~base ~profile ~resolved () in
  List.iter
    (fun shards ->
      let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
      Alcotest.(check int)
        (Printf.sprintf "%d shards registered" shards)
        shards
        (Csdl.Synopsis_shard.shard_count t);
      check_synopsis_equal
        (Printf.sprintf "merge of %d shards = monolithic draw" shards)
        reference
        (Csdl.Synopsis_shard.merge t);
      Alcotest.(check int)
        (Printf.sprintf "tuple counts over %d shards sum to the draw" shards)
        (Csdl.Synopsis.size_tuples reference)
        (Array.fold_left ( + ) 0 (Csdl.Synopsis_shard.shard_tuple_counts t)))
    [ 1; 2; 4; 8; 64 ]

let test_build_rejects_bad_shards () =
  let profile = profile () in
  let resolved = resolve profile in
  let badly f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "shards < 1 must be rejected"
  in
  badly (fun () ->
      Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards:0 ());
  badly (fun () ->
      let syn = Csdl.Synopsis.draw_base ~base ~profile ~resolved () in
      Csdl.Synopsis_shard.of_synopsis ~base ~profile ~shards:0 syn)

let test_flat_is_concat_of_slices () =
  let profile = profile () in
  let resolved = resolve profile in
  List.iter
    (fun shards ->
      let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
      let reference =
        Csdl.Synopsis_flat.of_synopsis (Csdl.Synopsis_shard.merge t)
      in
      check_flat_equal
        (Printf.sprintf "concatenated flat at %d shards" shards)
        reference
        (Csdl.Synopsis_shard.flat t))
    [ 1; 3; 8 ]

(* ---------------- deltas ---------------- *)

(* The post-delta tables [apply_delta] must agree with: deletes removed
   (in one pass, preserving survivor order), inserts appended. *)
let expected_table table { Csdl.Synopsis_shard.inserts; deletes } =
  let dead = Array.to_list deletes in
  let rows = ref [] in
  Table.iteri
    (fun i row -> if not (List.mem i dead) then rows := row :: !rows)
    table;
  Array.iter (fun row -> rows := row :: !rows) inserts;
  Table.of_rows schema (List.rev !rows)

let check_delta_matches_rebuild what ~shards ~delta t =
  let dirty = Csdl.Synopsis_shard.apply_delta t delta in
  Alcotest.(check bool)
    (what ^ ": dirty count within shard range")
    true
    (dirty >= 0 && dirty <= shards);
  let post = Csdl.Synopsis_shard.profile t in
  let resolved = resolve post in
  let rebuilt = Csdl.Synopsis.draw_base ~base ~profile:post ~resolved () in
  check_synopsis_equal (what ^ ": delta = from-scratch re-draw") rebuilt
    (Csdl.Synopsis_shard.merge t);
  check_flat_equal
    (what ^ ": flat after delta")
    (Csdl.Synopsis_flat.of_synopsis rebuilt)
    (Csdl.Synopsis_shard.flat t)

let test_delta_insert_delete_both_sides () =
  let profile = profile () in
  let resolved = resolve profile in
  let shards = 4 in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
  let delta =
    {
      Csdl.Synopsis_shard.a =
        {
          Csdl.Synopsis_shard.inserts =
            [|
              [| Value.Int 2; Value.Int 99 |];
              [| Value.Int 40; Value.Int 1 |];
              (* brand-new join value *)
            |];
          deletes = [| 0; 7; 19 |];
        };
      b =
        {
          Csdl.Synopsis_shard.inserts = [| [| Value.Int 3; Value.Int 77 |] |];
          deletes = [| 2 |];
        };
    }
  in
  let a0 = (Csdl.Synopsis_shard.profile t).Csdl.Profile.a.Csdl.Profile.table in
  let b0 = (Csdl.Synopsis_shard.profile t).Csdl.Profile.b.Csdl.Profile.table in
  let expect_a = expected_table a0 delta.Csdl.Synopsis_shard.a
  and expect_b = expected_table b0 delta.Csdl.Synopsis_shard.b in
  check_delta_matches_rebuild "mixed delta" ~shards ~delta t;
  let post = Csdl.Synopsis_shard.profile t in
  Alcotest.(check int64)
    "post-delta A table" (Table.fingerprint expect_a)
    (Table.fingerprint post.Csdl.Profile.a.Csdl.Profile.table);
  Alcotest.(check int64)
    "post-delta B table" (Table.fingerprint expect_b)
    (Table.fingerprint post.Csdl.Profile.b.Csdl.Profile.table)

let test_delta_on_empty_shards () =
  (* 64 shards over ~20 values: most shards hold nothing, and the delta
     walks through them (including routing an insert into what may be an
     empty shard) without disturbing the identity *)
  let profile = profile () in
  let resolved = resolve profile in
  let shards = 64 in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
  let delta =
    {
      Csdl.Synopsis_shard.a =
        {
          Csdl.Synopsis_shard.inserts = [| [| Value.Int 51; Value.Int 0 |] |];
          deletes = [||];
        };
      b =
        {
          Csdl.Synopsis_shard.inserts = [| [| Value.Int 51; Value.Int 1 |] |];
          deletes = [||];
        };
    }
  in
  check_delta_matches_rebuild "delta into empty shards" ~shards ~delta t

let test_delete_of_non_sampled_tuple () =
  let profile = profile () in
  let resolved = resolve profile in
  let shards = 4 in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
  let sample_a = (Csdl.Synopsis_shard.merge t).Csdl.Synopsis.sample_a in
  (* a row whose join value the first-level hash test rejected: deleting
     it still re-prices its group, but nothing sampled refers to it *)
  let victim = ref None in
  Table.iteri
    (fun i row ->
      if !victim = None then
        match row.(0) with
        | Value.Int _ as v ->
            if not (Value.Tbl.mem sample_a.Csdl.Sample.entries v) then
              victim := Some i
        | _ -> ())
    (Lazy.force table_a);
  match !victim with
  | None ->
      Alcotest.fail
        "fixture must leave at least one join value un-sampled at theta 0.5"
  | Some i ->
      let delta =
        {
          Csdl.Synopsis_shard.a =
            { Csdl.Synopsis_shard.inserts = [||]; deletes = [| i |] };
          b = Csdl.Synopsis_shard.no_delta;
        }
      in
      check_delta_matches_rebuild "delete of non-sampled tuple" ~shards ~delta
        t

let test_delta_rejects_bad_deletes () =
  let check what delta =
    let profile = profile () in
    let resolved = resolve profile in
    let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards:2 () in
    match Csdl.Synopsis_shard.apply_delta t delta with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ " must be rejected")
  in
  check "out-of-range delete"
    {
      Csdl.Synopsis_shard.a =
        { Csdl.Synopsis_shard.inserts = [||]; deletes = [| 100000 |] };
      b = Csdl.Synopsis_shard.no_delta;
    };
  check "duplicate delete"
    {
      Csdl.Synopsis_shard.a =
        { Csdl.Synopsis_shard.inserts = [||]; deletes = [| 3; 3 |] };
      b = Csdl.Synopsis_shard.no_delta;
    }

let test_sentry_consistency_interleaved () =
  let profile = profile () in
  let resolved = resolve profile in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards:4 () in
  let sentries_by_fold (s : Csdl.Sample.t) =
    Value.Tbl.fold
      (fun _ (e : Csdl.Sample.entry) acc ->
        match e.Csdl.Sample.sentry_row with Some _ -> acc + 1 | None -> acc)
      s.Csdl.Sample.entries 0
  in
  let check_consistent what =
    let { Csdl.Synopsis.sample_a; sample_b; _ } = Csdl.Synopsis_shard.merge t in
    List.iter
      (fun (side, s) ->
        Alcotest.(check int)
          (Printf.sprintf "%s: side %s sentry count" what side)
          (sentries_by_fold s)
          (Csdl.Sample.sentry_count s))
      [ ("A", sample_a); ("B", sample_b) ]
  in
  check_consistent "after build";
  let steps =
    [
      ( "insert",
        {
          Csdl.Synopsis_shard.a =
            {
              Csdl.Synopsis_shard.inserts =
                [| [| Value.Int 1; Value.Int 9 |] |];
              deletes = [||];
            };
          b = Csdl.Synopsis_shard.no_delta;
        } );
      ( "delete",
        {
          Csdl.Synopsis_shard.a =
            { Csdl.Synopsis_shard.inserts = [||]; deletes = [| 5 |] };
          b = Csdl.Synopsis_shard.no_delta;
        } );
      ( "mixed",
        {
          Csdl.Synopsis_shard.a =
            {
              Csdl.Synopsis_shard.inserts =
                [| [| Value.Int 6; Value.Int 8 |] |];
              deletes = [| 2; 11 |];
            };
          b =
            {
              Csdl.Synopsis_shard.inserts =
                [| [| Value.Int 6; Value.Int 0 |] |];
              deletes = [| 4 |];
            };
        } );
    ]
  in
  List.iter
    (fun (what, delta) ->
      ignore (Csdl.Synopsis_shard.apply_delta t delta);
      check_consistent ("after " ^ what))
    steps;
  (* and the interleaved end state is still the from-scratch draw *)
  let post = Csdl.Synopsis_shard.profile t in
  let resolved = resolve post in
  check_synopsis_equal "end state = re-draw"
    (Csdl.Synopsis.draw_base ~base ~profile:post ~resolved ())
    (Csdl.Synopsis_shard.merge t)

(* ---------------- v2 store format ---------------- *)

let resolve_table name =
  match name with
  | "a" -> Lazy.force table_a
  | "b" -> Lazy.force table_b
  | _ -> raise Not_found

let stored_with_shards shards =
  let profile = profile () in
  let resolved = resolve profile in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
  {
    Csdl.Synopsis_store.key = "s";
    table_a = "a";
    table_b = "b";
    swapped = false;
    fingerprint_a = Table.fingerprint (Lazy.force table_a);
    fingerprint_b = Table.fingerprint (Lazy.force table_b);
    prng_key = "7:synopsis/s";
    shards;
    sentinels = [];
    synopsis = Csdl.Synopsis_shard.merge t;
  }

let test_store_v2_roundtrip_per_shard () =
  List.iter
    (fun shards ->
      let stored = stored_with_shards shards in
      let image = Csdl.Synopsis_store.encode [ stored ] in
      match Csdl.Synopsis_store.decode ~resolve_table image with
      | Error e ->
          Alcotest.failf "%d shards: decode failed: %s" shards
            (Csdl.Fault.error_to_string e)
      | Ok [ back ] ->
          Alcotest.(check int)
            (Printf.sprintf "%d shards recorded" shards)
            shards back.Csdl.Synopsis_store.shards;
          Alcotest.(check string)
            (Printf.sprintf "%d shards: re-encode is bit-identical" shards)
            image
            (Csdl.Synopsis_store.encode [ back ])
      | Ok l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))
    [ 1; 4; 8 ]

(* FNV-1a, transcribed from the store's checksum, to re-seal the outer
   header after corrupting payload bytes — corruption below the outer
   checksum is exactly what the per-segment verification must catch. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let reseal payload =
  let buf = Buffer.create (String.length payload + 40) in
  Buffer.add_string buf "reprosyn";
  Buffer.add_int64_le buf (Int64.of_int Csdl.Synopsis_store.version);
  Buffer.add_int64_le buf Csdl.Synopsis_store.schema_hash;
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_int64_le buf (fnv64 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let expect_shard_segment_fault what = function
  | Error (Csdl.Fault.Store_mismatch { what = w; _ }) ->
      Alcotest.(check string) (what ^ ": fault names the segment") "shard segment" w
  | Error e ->
      Alcotest.failf "%s: expected shard-segment fault, got %s" what
        (Csdl.Fault.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: corrupted segment must not decode" what

let test_rejects_corrupt_shard_segment () =
  let image = Csdl.Synopsis_store.encode [ stored_with_shards 4 ] in
  let payload = String.sub image 40 (String.length image - 40) in
  (* payload tail: ... | sample_b's last segment | n_prime f64. Flipping
     the byte 9 from the end lands inside the last segment's checksum or
     entry bytes — under the (re-sealed) outer checksum, so only the
     per-segment verification can catch it. *)
  let corrupt = Bytes.of_string payload in
  let pos = Bytes.length corrupt - 9 in
  Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 1));
  expect_shard_segment_fault "corrupt byte"
    (Csdl.Synopsis_store.decode ~resolve_table
       (reseal (Bytes.to_string corrupt)))

let test_rejects_truncated_shard_segment () =
  (* disjoint join values: the semijoin side draws nothing, so sample_b's
     segments are all empty 16-byte [length|checksum] blocks at known
     offsets from the payload end — bump the last segment's length and
     the reader must report the truncation by shard index, not misparse
     n_prime as entry bytes *)
  let a = table_of_counts [ (1, 4); (2, 5) ]
  and b = table_of_counts [ (100, 3); (200, 2) ] in
  let profile = Csdl.Profile.of_tables a "k" b "k" in
  let resolved = resolve profile in
  let shards = 4 in
  let t = Csdl.Synopsis_shard.build ~base ~profile ~resolved ~shards () in
  let stored =
    {
      Csdl.Synopsis_store.key = "s";
      table_a = "a";
      table_b = "b";
      swapped = false;
      fingerprint_a = Table.fingerprint a;
      fingerprint_b = Table.fingerprint b;
      prng_key = "";
      shards;
      sentinels = [];
      synopsis = Csdl.Synopsis_shard.merge t;
    }
  in
  let resolve_table name =
    match name with "a" -> a | "b" -> b | _ -> raise Not_found
  in
  (match Csdl.Synopsis_store.decode ~resolve_table
           (Csdl.Synopsis_store.encode [ stored ])
   with
  | Ok [ back ] ->
      Alcotest.(check int)
        "fixture: semijoin sample is empty" 0
        (Value.Tbl.length
           back.Csdl.Synopsis_store.synopsis.Csdl.Synopsis.sample_b
             .Csdl.Sample.entries)
  | _ -> Alcotest.fail "fixture store must decode");
  let image = Csdl.Synopsis_store.encode [ stored ] in
  let payload = Bytes.of_string (String.sub image 40 (String.length image - 40)) in
  (* last empty segment block sits at [len - 8 (n_prime) - 16, len - 8) *)
  let len_field = Bytes.length payload - 8 - 16 in
  Bytes.set_int64_le payload len_field 1_000_000L;
  expect_shard_segment_fault "oversized segment length"
    (Csdl.Synopsis_store.decode ~resolve_table
       (reseal (Bytes.to_string payload)))

let () =
  Alcotest.run "csdl_shard"
    [
      ( "merge",
        [
          Alcotest.test_case "K shards = monolithic draw" `Quick
            test_merge_matches_monolithic;
          Alcotest.test_case "rejects shards < 1" `Quick
            test_build_rejects_bad_shards;
          Alcotest.test_case "flat = concat of shard slices" `Quick
            test_flat_is_concat_of_slices;
        ] );
      ( "delta",
        [
          Alcotest.test_case "insert+delete both sides" `Quick
            test_delta_insert_delete_both_sides;
          Alcotest.test_case "empty shards" `Quick test_delta_on_empty_shards;
          Alcotest.test_case "delete of non-sampled tuple" `Quick
            test_delete_of_non_sampled_tuple;
          Alcotest.test_case "rejects bad delete indices" `Quick
            test_delta_rejects_bad_deletes;
          Alcotest.test_case "sentry consistency, interleaved" `Quick
            test_sentry_consistency_interleaved;
        ] );
      ( "store v2",
        [
          Alcotest.test_case "per-shard roundtrip" `Quick
            test_store_v2_roundtrip_per_shard;
          Alcotest.test_case "rejects corrupt shard segment" `Quick
            test_rejects_corrupt_shard_segment;
          Alcotest.test_case "rejects truncated shard segment" `Quick
            test_rejects_truncated_shard_segment;
        ] );
    ]
