(* Tests for the relational engine: values, schemas, tables, predicates,
   joins, CSV round-trips. *)

open Repro_relation

let schema_ab =
  Schema.make [ ("a", Schema.T_int); ("b", Schema.T_string) ]

let mk_table rows = Table.of_rows schema_ab rows

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_null_equality () =
  Alcotest.(check bool) "null <> null (SQL)" false Value.(equal Null Null);
  Alcotest.(check bool) "null <> 1" false Value.(equal Null (Int 1));
  Alcotest.(check bool) "1 = 1" true Value.(equal (Int 1) (Int 1));
  Alcotest.(check bool) "int/float widening" true Value.(equal (Int 1) (Float 1.0))

let test_value_compare_total_order () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (Value.Int 0) < 0);
  Alcotest.(check bool) "int vs float" true
    (Value.compare (Value.Int 2) (Value.Float 1.5) > 0);
  Alcotest.(check int) "null = null in containers" 0 (Value.compare Value.Null Value.Null);
  Alcotest.(check bool) "str order" true
    (Value.compare (Value.Str "abc") (Value.Str "abd") < 0)

let test_value_containers_handle_null () =
  let tbl = Value.Tbl.create 4 in
  Value.Tbl.replace tbl Value.Null 1;
  Value.Tbl.replace tbl Value.Null 2;
  Alcotest.(check int) "null key unified" 1 (Value.Tbl.length tbl);
  Alcotest.(check (option int)) "replaced" (Some 2) (Value.Tbl.find_opt tbl Value.Null)

let test_value_to_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "str" "hi" (Value.to_string (Value.Str "hi"))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_lookup () =
  Alcotest.(check int) "arity" 2 (Schema.arity schema_ab);
  Alcotest.(check int) "index a" 0 (Schema.index_of schema_ab "a");
  Alcotest.(check int) "index b" 1 (Schema.index_of schema_ab "b");
  Alcotest.(check bool) "mem" true (Schema.mem schema_ab "a");
  Alcotest.(check bool) "not mem" false (Schema.mem schema_ab "zzz")

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate column \"x\"") (fun () ->
      ignore (Schema.make [ ("x", Schema.T_int); ("x", Schema.T_int) ]))

let test_schema_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty column list")
    (fun () -> ignore (Schema.make []))

let test_schema_accepts () =
  Alcotest.(check bool) "int col accepts int" true
    (Schema.accepts Schema.T_int (Value.Int 1));
  Alcotest.(check bool) "int col accepts null" true
    (Schema.accepts Schema.T_int Value.Null);
  Alcotest.(check bool) "int col rejects str" false
    (Schema.accepts Schema.T_int (Value.Str "x"));
  Alcotest.(check bool) "float col accepts int" true
    (Schema.accepts Schema.T_float (Value.Int 1))

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let sample_rows =
  [
    [| Value.Int 1; Value.Str "x" |];
    [| Value.Int 2; Value.Str "y" |];
    [| Value.Int 1; Value.Str "z" |];
    [| Value.Null; Value.Str "n" |];
  ]

let test_table_basics () =
  let t = mk_table sample_rows in
  Alcotest.(check int) "cardinality" 4 (Table.cardinality t);
  Alcotest.(check int) "distinct a (nulls skipped)" 2 (Table.distinct_count t "a")

let test_table_arity_check () =
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Table.create: row 0 has arity 1, schema wants 2")
    (fun () -> ignore (Table.of_rows schema_ab [ [| Value.Int 1 |] ]))

let test_table_validation () =
  Alcotest.check_raises "bad type"
    (Invalid_argument "Table.create: row 0 column a: string value") (fun () ->
      ignore
        (Table.create ~validate:true schema_ab
           [| [| Value.Str "oops"; Value.Str "x" |] |]))

let test_table_frequency_map () =
  let t = mk_table sample_rows in
  let freq = Table.frequency_map t "a" in
  Alcotest.(check (option int)) "freq 1" (Some 2) (Value.Tbl.find_opt freq (Value.Int 1));
  Alcotest.(check (option int)) "freq 2" (Some 1) (Value.Tbl.find_opt freq (Value.Int 2));
  Alcotest.(check (option int)) "null skipped" None (Value.Tbl.find_opt freq Value.Null)

let test_table_group_by () =
  let t = mk_table sample_rows in
  let groups = Table.group_by t "a" in
  Alcotest.(check (option (array int)))
    "group of 1" (Some [| 0; 2 |])
    (Value.Tbl.find_opt groups (Value.Int 1));
  Alcotest.(check int) "two groups" 2 (Value.Tbl.length groups)

let test_table_filter_and_select () =
  let t = mk_table sample_rows in
  let idx = Table.column_index t "a" in
  let filtered = Table.filter (fun r -> Value.equal r.(idx) (Value.Int 1)) t in
  Alcotest.(check int) "filter" 2 (Table.cardinality filtered);
  let picked = Table.select_rows t [| 1; 3 |] in
  Alcotest.(check int) "select" 2 (Table.cardinality picked);
  Alcotest.(check string) "selected row" "y" (Value.to_string (Table.row picked 0).(1))

let test_table_unknown_column () =
  let t = mk_table sample_rows in
  Alcotest.check_raises "unknown" (Invalid_argument "Table: no column named \"nope\"")
    (fun () -> ignore (Table.column_values t "nope"))

(* ------------------------------------------------------------------ *)
(* Predicate                                                           *)
(* ------------------------------------------------------------------ *)

let test_predicate_compare () =
  let t = mk_table sample_rows in
  let sel p = Table.cardinality (Predicate.apply p t) in
  Alcotest.(check int) "a = 1" 2 (sel (Predicate.Compare (Predicate.Eq, "a", Value.Int 1)));
  Alcotest.(check int) "a > 1" 1 (sel (Predicate.Compare (Predicate.Gt, "a", Value.Int 1)));
  Alcotest.(check int) "a <= 2" 3 (sel (Predicate.Compare (Predicate.Le, "a", Value.Int 2)));
  Alcotest.(check int) "a <> 1 skips null" 1
    (sel (Predicate.Compare (Predicate.Ne, "a", Value.Int 1)))

let test_predicate_null_comparisons_false () =
  let t = mk_table [ [| Value.Null; Value.Str "x" |] ] in
  let sel p = Table.cardinality (Predicate.apply p t) in
  Alcotest.(check int) "null = 1 is false" 0
    (sel (Predicate.Compare (Predicate.Eq, "a", Value.Int 1)));
  Alcotest.(check int) "NOT (null = 1) is true (2-valued)" 1
    (sel (Predicate.Not (Predicate.Compare (Predicate.Eq, "a", Value.Int 1))))

let test_predicate_like () =
  let rows =
    [
      [| Value.Int 1; Value.Str "The Matrix" |];
      [| Value.Int 2; Value.Str "Theodore" |];
      [| Value.Int 3; Value.Str "A Matrix" |];
      [| Value.Int 4; Value.Null |];
    ]
  in
  let t = mk_table rows in
  let sel p = Table.cardinality (Predicate.apply p t) in
  Alcotest.(check int) "prefix The" 2 (sel (Predicate.Like_prefix ("b", "The")));
  Alcotest.(check int) "prefix The-space" 1 (sel (Predicate.Like_prefix ("b", "The ")));
  Alcotest.(check int) "contains Matrix" 2 (sel (Predicate.Like_contains ("b", "Matrix")));
  Alcotest.(check int) "contains empty matches all non-null strings" 3
    (sel (Predicate.Like_contains ("b", "")))

let test_predicate_boolean_composition () =
  let t = mk_table sample_rows in
  let sel p = Table.cardinality (Predicate.apply p t) in
  let a1 = Predicate.Compare (Predicate.Eq, "a", Value.Int 1) in
  let by = Predicate.Compare (Predicate.Eq, "b", Value.Str "y") in
  Alcotest.(check int) "and" 0 (sel (Predicate.And (a1, by)));
  Alcotest.(check int) "or" 3 (sel (Predicate.Or (a1, by)));
  Alcotest.(check int) "true" 4 (sel Predicate.True);
  Alcotest.(check int) "false" 0 (sel Predicate.False);
  Alcotest.(check int) "conj empty" 4 (sel (Predicate.conj []))

let test_predicate_selectivity () =
  let t = mk_table sample_rows in
  Alcotest.(check (float 1e-9)) "selectivity" 0.5
    (Predicate.selectivity (Predicate.Compare (Predicate.Eq, "a", Value.Int 1)) t)

let test_predicate_to_string () =
  Alcotest.(check string) "render like"
    "b LIKE 'The%'"
    (Predicate.to_string (Predicate.Like_prefix ("b", "The")));
  Alcotest.(check string) "render compare" "a > 3"
    (Predicate.to_string (Predicate.Compare (Predicate.Gt, "a", Value.Int 3)))

(* ------------------------------------------------------------------ *)
(* Join                                                                *)
(* ------------------------------------------------------------------ *)

let join_left =
  mk_table
    [
      [| Value.Int 1; Value.Str "l1" |];
      [| Value.Int 1; Value.Str "l2" |];
      [| Value.Int 2; Value.Str "l3" |];
      [| Value.Int 9; Value.Str "l4" |];
      [| Value.Null; Value.Str "l5" |];
    ]

let join_right =
  mk_table
    [
      [| Value.Int 1; Value.Str "r1" |];
      [| Value.Int 2; Value.Str "r2" |];
      [| Value.Int 2; Value.Str "r3" |];
      [| Value.Null; Value.Str "r4" |];
    ]

(* Oracle: nested-loop join count. *)
let nested_loop_count ta ca tb cb pa pb =
  let ia = Table.column_index ta ca and ib = Table.column_index tb cb in
  let pass_a = Predicate.compile pa (Table.schema ta) in
  let pass_b = Predicate.compile pb (Table.schema tb) in
  let count = ref 0 in
  Table.iter
    (fun row_a ->
      if pass_a row_a then
        Table.iter
          (fun row_b ->
            if pass_b row_b && Value.equal row_a.(ia) row_b.(ib) then incr count)
          tb)
    ta;
  !count

let test_join_pair_count () =
  let expected =
    nested_loop_count join_left "a" join_right "a" Predicate.True Predicate.True
  in
  Alcotest.(check int) "matches nested loop" expected
    (Join.pair_count (Join.unfiltered join_left "a") (Join.unfiltered join_right "a"));
  Alcotest.(check int) "value" 4 expected (* 2*1 for v=1, 1*2 for v=2 *)

let test_join_pair_count_filtered () =
  let pa = Predicate.Compare (Predicate.Eq, "b", Value.Str "l1") in
  let expected = nested_loop_count join_left "a" join_right "a" pa Predicate.True in
  Alcotest.(check int) "filtered" expected
    (Join.pair_count (Join.filtered join_left "a" pa) (Join.unfiltered join_right "a"))

let test_join_nulls_never_join () =
  let l = mk_table [ [| Value.Null; Value.Str "x" |] ] in
  let r = mk_table [ [| Value.Null; Value.Str "y" |] ] in
  Alcotest.(check int) "null join" 0
    (Join.pair_count (Join.unfiltered l "a") (Join.unfiltered r "a"))

let test_join_pair_rows () =
  let rows =
    Join.pair_rows (Join.unfiltered join_left "a") (Join.unfiltered join_right "a")
  in
  Alcotest.(check int) "materialised size" 4 (List.length rows)

let test_join_semijoin () =
  let keep = Value.Set.of_list [ Value.Int 2; Value.Int 9 ] in
  let result = Join.semijoin join_left "a" ~member:(fun v -> Value.Set.mem v keep) in
  Alcotest.(check int) "semijoin size" 2 (Table.cardinality result)

let test_join_jvd () =
  (* left: 3 distinct / 5 rows; right: 2 distinct / 4 rows *)
  Alcotest.(check (float 1e-9)) "jvd" 0.5 (Join.jvd join_left "a" join_right "a")

let chain_a =
  Table.of_rows
    (Schema.make [ ("pk", Schema.T_int); ("x", Schema.T_int) ])
    [ [| Value.Int 1; Value.Int 10 |]; [| Value.Int 2; Value.Int 20 |] ]

let chain_b =
  Table.of_rows
    (Schema.make [ ("pk", Schema.T_int); ("fk", Schema.T_int) ])
    [
      [| Value.Int 100; Value.Int 1 |];
      [| Value.Int 200; Value.Int 1 |];
      [| Value.Int 300; Value.Int 2 |];
      [| Value.Int 400; Value.Int 9 |];
    ]

let chain_c =
  Table.of_rows
    (Schema.make [ ("fk", Schema.T_int); ("y", Schema.T_int) ])
    [
      [| Value.Int 100; Value.Int 0 |];
      [| Value.Int 100; Value.Int 1 |];
      [| Value.Int 300; Value.Int 2 |];
      [| Value.Int 999; Value.Int 3 |];
    ]

let test_join_chain3 () =
  (* A |><| B |><| C: B rows 100,200 -> A pk 1; B 300 -> A pk 2; B 400 -> no A.
     C: two rows fk=100 (join via B 100 -> A 1), one fk=300 (B 300 -> A 2),
     one 999 no match. Total = 2 + 1 = 3. *)
  Alcotest.(check int) "chain count" 3
    (Join.chain3_count
       ~a:(Join.unfiltered chain_a "pk")
       ~b:(Join.unfiltered chain_b "pk")
       ~b_fk:"fk"
       ~c:(Join.unfiltered chain_c "fk"))

let test_join_chain3_with_predicate () =
  (* Selection x = 10 keeps only A pk 1, killing the fk=300 path. *)
  Alcotest.(check int) "filtered chain" 2
    (Join.chain3_count
       ~a:(Join.filtered chain_a "pk" (Predicate.Compare (Predicate.Eq, "x", Value.Int 10)))
       ~b:(Join.unfiltered chain_b "pk")
       ~b_fk:"fk"
       ~c:(Join.unfiltered chain_c "fk"))

let test_join_star_count () =
  let fact =
    Table.of_rows
      (Schema.make [ ("fk1", Schema.T_int); ("fk2", Schema.T_int) ])
      [
        [| Value.Int 1; Value.Int 100 |];
        [| Value.Int 1; Value.Int 999 |];
        [| Value.Int 2; Value.Int 100 |];
      ]
  in
  let d1 = chain_a (* pk 1,2 *) in
  let d2 =
    Table.of_rows
      (Schema.make [ ("pk", Schema.T_int) ])
      [ [| Value.Int 100 |] ]
  in
  Alcotest.(check int) "star count" 2
    (Join.star_count ~fact ~fact_predicate:Predicate.True
       ~dimensions:
         [ ("fk1", Join.unfiltered d1 "pk"); ("fk2", Join.unfiltered d2 "pk") ])

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let t =
    mk_table
      [
        [| Value.Int 1; Value.Str "plain" |];
        [| Value.Int 2; Value.Str "with,comma" |];
        [| Value.Int 3; Value.Str "with\"quote" |];
        [| Value.Null; Value.Str "" |];
      ]
  in
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.write path t;
      let back = Csv_io.read schema_ab path in
      Alcotest.(check int) "rows" 4 (Table.cardinality back);
      Alcotest.(check string) "comma field" "with,comma"
        (Value.to_string (Table.row back 1).(1));
      Alcotest.(check string) "quote field" "with\"quote"
        (Value.to_string (Table.row back 2).(1));
      Alcotest.(check bool) "null survives" true
        (match (Table.row back 3).(0) with Value.Null -> true | _ -> false))

let test_csv_read_auto_infers_types () =
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "id,score,name\n1,2.5,alpha\n2,3,beta\n,,\n";
      close_out oc;
      let t = Csv_io.read_auto path in
      let schema = Table.schema t in
      Alcotest.(check int) "rows" 3 (Table.cardinality t);
      Alcotest.(check bool) "id is int" true
        (Schema.type_of schema (Schema.index_of schema "id") = Schema.T_int);
      Alcotest.(check bool) "score is float" true
        (Schema.type_of schema (Schema.index_of schema "score") = Schema.T_float);
      Alcotest.(check bool) "name is string" true
        (Schema.type_of schema (Schema.index_of schema "name") = Schema.T_string);
      Alcotest.(check bool) "empty row is nulls" true
        (match (Table.row t 2).(0) with Value.Null -> true | _ -> false))

let test_csv_read_auto_arity_error_line_number () =
  (* blank lines are skipped but still advance the file position: the
     ragged record on file line 5 must be reported as line 5, not by its
     index among the surviving records (which would say line 3) *)
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "a,b\n1,2\n\n\n3,4,5\n";
      close_out oc;
      match Csv_io.read_auto path with
      | exception Failure msg ->
          Alcotest.(check string) "real file line reported"
            "line 5: expected 2 fields, got 3" msg
      | _ -> Alcotest.fail "expected Failure on ragged record")

let test_csv_read_auto_widen_to_string () =
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "mixed\n1\n2.5\nhello\n";
      close_out oc;
      let t = Csv_io.read_auto path in
      let schema = Table.schema t in
      Alcotest.(check bool) "widened to string" true
        (Schema.type_of schema 0 = Schema.T_string))

let test_csv_bad_field () =
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "a,b\nnot_an_int,x\n";
      close_out oc;
      match Csv_io.read schema_ab path with
      | exception Failure msg ->
          Alcotest.(check bool) "mentions line" true
            (String.length msg > 0 && String.sub msg 0 4 = "line")
      | _ -> Alcotest.fail "expected Failure")

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_csv_unterminated_quote_located () =
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "a,b\n1,\"oops\n";
      close_out oc;
      (match Csv_io.read schema_ab path with
      | exception Failure msg ->
          Alcotest.(check bool) "names line 2" true (contains msg "line 2");
          Alcotest.(check bool) "names field 2" true (contains msg "field 2");
          Alcotest.(check bool) "says unterminated" true
            (contains msg "unterminated quote")
      | _ -> Alcotest.fail "expected Failure");
      match Csv_io.read_strict schema_ab path with
      | Error { Csv_io.line; reason } ->
          Alcotest.(check int) "error line" 2 line;
          Alcotest.(check bool) "reason located" true
            (contains reason "unterminated quote")
      | Ok _ -> Alcotest.fail "expected Error")

let test_csv_read_lenient_skips_bad_rows () =
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      (* line 2 ok, 3 bad int, 4 wrong arity, 5 unterminated quote, 6 ok *)
      output_string oc "a,b\n1,x\nnot_an_int,y\n7\n8,\"oops\n9,z\n";
      close_out oc;
      let { Csv_io.table; skipped; skipped_count } =
        Csv_io.read_lenient schema_ab path
      in
      Alcotest.(check int) "kept rows" 2 (Table.cardinality table);
      Alcotest.(check int) "skip counter" 3 skipped_count;
      Alcotest.(check (list int)) "skipped lines" [ 3; 4; 5 ]
        (List.map (fun e -> e.Csv_io.line) skipped);
      (* strict mode reports the first of the same errors *)
      match Csv_io.read_strict schema_ab path with
      | Error { Csv_io.line; _ } -> Alcotest.(check int) "first error" 3 line
      | Ok _ -> Alcotest.fail "expected Error")

let test_csv_strict_ok_roundtrip () =
  let t =
    Table.of_rows schema_ab
      [ [| Value.Int 1; Value.Str "x" |]; [| Value.Int 2; Value.Str "y" |] ]
  in
  let path = Filename.temp_file "repro" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.write path t;
      match Csv_io.read_strict schema_ab path with
      | Ok back -> Alcotest.(check int) "rows" 2 (Table.cardinality back)
      | Error { Csv_io.reason; _ } -> Alcotest.failf "unexpected: %s" reason)

(* ------------------------------------------------------------------ *)
(* Predicate parser                                                    *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Predicate_parser.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let parse_err s =
  match Predicate_parser.parse s with
  | Ok p -> Alcotest.failf "parse %S unexpectedly gave %s" s (Predicate.to_string p)
  | Error _ -> ()

let test_parser_comparisons () =
  Alcotest.(check string) "gt" "a > 3" (Predicate.to_string (parse_ok "a > 3"));
  Alcotest.(check string) "le" "a <= 3" (Predicate.to_string (parse_ok "a<=3"));
  Alcotest.(check string) "ne <>" "a <> 3" (Predicate.to_string (parse_ok "a <> 3"));
  Alcotest.(check string) "ne !=" "a <> 3" (Predicate.to_string (parse_ok "a != 3"));
  Alcotest.(check string) "float" "a >= 99.5" (Predicate.to_string (parse_ok "a >= 99.5"));
  Alcotest.(check string) "string" "b = 'xyz'" (Predicate.to_string (parse_ok "b = 'xyz'"));
  Alcotest.(check string) "negative int" "a < -4" (Predicate.to_string (parse_ok "a < -4"))

let test_parser_like () =
  (match parse_ok "b LIKE 'The %'" with
  | Predicate.Like_prefix ("b", "The ") -> ()
  | p -> Alcotest.failf "wrong like: %s" (Predicate.to_string p));
  (match parse_ok "b like '%mat%'" with
  | Predicate.Like_contains ("b", "mat") -> ()
  | p -> Alcotest.failf "wrong contains: %s" (Predicate.to_string p));
  (match parse_ok "b LIKE 'exact'" with
  | Predicate.Compare (Predicate.Eq, "b", Value.Str "exact") -> ()
  | p -> Alcotest.failf "wrong equality: %s" (Predicate.to_string p));
  parse_err "b LIKE 'a%b'";
  parse_err "b LIKE 'a%b%'"

let test_parser_boolean_structure () =
  (* AND binds tighter than OR *)
  (match parse_ok "a = 1 OR b = 'x' AND a = 2" with
  | Predicate.Or (_, Predicate.And (_, _)) -> ()
  | p -> Alcotest.failf "precedence wrong: %s" (Predicate.to_string p));
  (match parse_ok "(a = 1 OR b = 'x') AND a = 2" with
  | Predicate.And (Predicate.Or (_, _), _) -> ()
  | p -> Alcotest.failf "parens wrong: %s" (Predicate.to_string p));
  (match parse_ok "NOT a = 1" with
  | Predicate.Not _ -> ()
  | p -> Alcotest.failf "not wrong: %s" (Predicate.to_string p));
  (match parse_ok "true AND FALSE" with
  | Predicate.And (Predicate.True, Predicate.False) -> ()
  | p -> Alcotest.failf "constants wrong: %s" (Predicate.to_string p))

let test_parser_string_escapes () =
  match parse_ok "b = 'it''s'" with
  | Predicate.Compare (Predicate.Eq, "b", Value.Str "it's") -> ()
  | p -> Alcotest.failf "escape wrong: %s" (Predicate.to_string p)

let test_parser_errors () =
  parse_err "";
  parse_err "a >";
  parse_err "a = 'unterminated";
  parse_err "a = 1 extra";
  parse_err "(a = 1";
  parse_err "= 3";
  parse_err "a ~ 3"

let test_parser_parsed_predicates_evaluate () =
  let t = mk_table sample_rows in
  let sel s = Table.cardinality (Predicate.apply (parse_ok s) t) in
  Alcotest.(check int) "a = 1" 2 (sel "a = 1");
  Alcotest.(check int) "disjunction" 3 (sel "a = 1 OR b = 'y'");
  Alcotest.(check int) "like prefix" 1 (sel "b LIKE 'y%'")

(* ------------------------------------------------------------------ *)
(* Aggregate                                                           *)
(* ------------------------------------------------------------------ *)

let agg_schema =
  Schema.make
    [ ("grp", Schema.T_int); ("v", Schema.T_int); ("w", Schema.T_float) ]

let agg_table =
  Table.of_rows agg_schema
    [
      [| Value.Int 1; Value.Int 10; Value.Float 1.5 |];
      [| Value.Int 1; Value.Int 20; Value.Float 2.5 |];
      [| Value.Int 2; Value.Int 5; Value.Float 4.0 |];
      [| Value.Int 2; Value.Null; Value.Float 6.0 |];
      [| Value.Null; Value.Int 7; Value.Null |];
    ]

let cell table i name = (Table.row table i).(Table.column_index table name)

let test_aggregate_group_by_count_sum () =
  let out =
    Aggregate.group_by ~keys:[ "grp" ]
      ~aggregations:[ ("n", Aggregate.Count); ("total", Aggregate.Sum "v") ]
      agg_table
  in
  (* groups sorted by key: Null < 1 < 2 *)
  Alcotest.(check int) "three groups" 3 (Table.cardinality out);
  Alcotest.(check string) "null group count" "1" (Value.to_string (cell out 0 "n"));
  Alcotest.(check string) "group 1 count" "2" (Value.to_string (cell out 1 "n"));
  Alcotest.(check string) "group 1 sum" "30" (Value.to_string (cell out 1 "total"));
  Alcotest.(check string) "group 2 sum skips null" "5"
    (Value.to_string (cell out 2 "total"))

let test_aggregate_avg_min_max () =
  let out =
    Aggregate.group_by ~keys:[ "grp" ]
      ~aggregations:
        [ ("avg_w", Aggregate.Avg "w"); ("min_v", Aggregate.Min "v");
          ("max_v", Aggregate.Max "v") ]
      agg_table
  in
  Alcotest.(check string) "group 1 avg" "2" (Value.to_string (cell out 1 "avg_w"));
  Alcotest.(check string) "group 1 min" "10" (Value.to_string (cell out 1 "min_v"));
  Alcotest.(check string) "group 1 max" "20" (Value.to_string (cell out 1 "max_v"));
  (* null group's w is Null only -> Avg Null *)
  Alcotest.(check bool) "null avg" true
    (match cell out 0 "avg_w" with Value.Null -> true | _ -> false)

let test_aggregate_count_distinct () =
  let out =
    Aggregate.group_by ~keys:[ "grp" ]
      ~aggregations:[ ("d", Aggregate.Count_distinct "v") ]
      agg_table
  in
  Alcotest.(check string) "group 2 distinct skips null" "1"
    (Value.to_string (cell out 2 "d"))

let test_aggregate_empty_keys_rejected () =
  Alcotest.check_raises "empty keys"
    (Invalid_argument "Aggregate.group_by: empty key list") (fun () ->
      ignore (Aggregate.group_by ~keys:[] ~aggregations:[] agg_table))

let test_aggregate_order_by_and_top_k () =
  let sorted = Aggregate.order_by ~by:"v" agg_table in
  Alcotest.(check bool) "nulls first ascending" true
    (match (Table.row sorted 0).(1) with Value.Null -> true | _ -> false);
  let top = Aggregate.top_k ~by:"v" 2 agg_table in
  Alcotest.(check int) "k rows" 2 (Table.cardinality top);
  Alcotest.(check string) "largest first" "20"
    (Value.to_string (Table.row top 0).(1))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let table_gen =
  (* random small tables over a shared tiny domain to force collisions *)
  QCheck.Gen.(
    list_size (int_range 0 30)
      (map2
         (fun a b -> [| Value.Int a; Value.Str (string_of_int b) |])
         (int_range 0 5) (int_range 0 3)))

let prop_pair_count_matches_nested_loop =
  QCheck.Test.make ~count:100 ~name:"hash join count = nested loop count"
    (QCheck.make (QCheck.Gen.pair table_gen table_gen))
    (fun (rows_a, rows_b) ->
      let ta = mk_table rows_a and tb = mk_table rows_b in
      Join.pair_count (Join.unfiltered ta "a") (Join.unfiltered tb "a")
      = nested_loop_count ta "a" tb "a" Predicate.True Predicate.True)

let prop_pair_count_commutative =
  QCheck.Test.make ~count:100 ~name:"join count is symmetric"
    (QCheck.make (QCheck.Gen.pair table_gen table_gen))
    (fun (rows_a, rows_b) ->
      let ta = mk_table rows_a and tb = mk_table rows_b in
      Join.pair_count (Join.unfiltered ta "a") (Join.unfiltered tb "a")
      = Join.pair_count (Join.unfiltered tb "a") (Join.unfiltered ta "a"))

let prop_jvd_in_unit_interval =
  QCheck.Test.make ~count:100 ~name:"jvd in [0,1]"
    (QCheck.make (QCheck.Gen.pair table_gen table_gen))
    (fun (rows_a, rows_b) ->
      let ta = mk_table rows_a and tb = mk_table rows_b in
      let v = Join.jvd ta "a" tb "a" in
      v >= 0.0 && v <= 1.0)

let () =
  Alcotest.run "repro_relation"
    [
      ( "value",
        [
          Alcotest.test_case "null equality" `Quick test_value_null_equality;
          Alcotest.test_case "compare order" `Quick test_value_compare_total_order;
          Alcotest.test_case "containers with null" `Quick test_value_containers_handle_null;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate_rejected;
          Alcotest.test_case "empty rejected" `Quick test_schema_empty_rejected;
          Alcotest.test_case "accepts" `Quick test_schema_accepts;
        ] );
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "frequency map" `Quick test_table_frequency_map;
          Alcotest.test_case "group_by" `Quick test_table_group_by;
          Alcotest.test_case "filter/select" `Quick test_table_filter_and_select;
          Alcotest.test_case "unknown column" `Quick test_table_unknown_column;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "compare ops" `Quick test_predicate_compare;
          Alcotest.test_case "null comparisons" `Quick test_predicate_null_comparisons_false;
          Alcotest.test_case "LIKE" `Quick test_predicate_like;
          Alcotest.test_case "boolean composition" `Quick test_predicate_boolean_composition;
          Alcotest.test_case "selectivity" `Quick test_predicate_selectivity;
          Alcotest.test_case "to_string" `Quick test_predicate_to_string;
        ] );
      ( "join",
        [
          Alcotest.test_case "pair count" `Quick test_join_pair_count;
          Alcotest.test_case "filtered pair count" `Quick test_join_pair_count_filtered;
          Alcotest.test_case "nulls never join" `Quick test_join_nulls_never_join;
          Alcotest.test_case "pair rows" `Quick test_join_pair_rows;
          Alcotest.test_case "semijoin" `Quick test_join_semijoin;
          Alcotest.test_case "jvd" `Quick test_join_jvd;
          Alcotest.test_case "chain3 count" `Quick test_join_chain3;
          Alcotest.test_case "chain3 with predicate" `Quick test_join_chain3_with_predicate;
          Alcotest.test_case "star count" `Quick test_join_star_count;
        ] );
      ( "predicate_parser",
        [
          Alcotest.test_case "comparisons" `Quick test_parser_comparisons;
          Alcotest.test_case "LIKE" `Quick test_parser_like;
          Alcotest.test_case "boolean structure" `Quick test_parser_boolean_structure;
          Alcotest.test_case "string escapes" `Quick test_parser_string_escapes;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "evaluation" `Quick test_parser_parsed_predicates_evaluate;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "count/sum" `Quick test_aggregate_group_by_count_sum;
          Alcotest.test_case "avg/min/max" `Quick test_aggregate_avg_min_max;
          Alcotest.test_case "count distinct" `Quick test_aggregate_count_distinct;
          Alcotest.test_case "empty keys" `Quick test_aggregate_empty_keys_rejected;
          Alcotest.test_case "order_by/top_k" `Quick test_aggregate_order_by_and_top_k;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "read_auto inference" `Quick test_csv_read_auto_infers_types;
          Alcotest.test_case "read_auto widening" `Quick test_csv_read_auto_widen_to_string;
          Alcotest.test_case "read_auto arity error line numbers" `Quick
            test_csv_read_auto_arity_error_line_number;
          Alcotest.test_case "bad field" `Quick test_csv_bad_field;
          Alcotest.test_case "unterminated quote located" `Quick
            test_csv_unterminated_quote_located;
          Alcotest.test_case "lenient skips bad rows" `Quick
            test_csv_read_lenient_skips_bad_rows;
          Alcotest.test_case "strict ok roundtrip" `Quick
            test_csv_strict_ok_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pair_count_matches_nested_loop;
            prop_pair_count_commutative;
            prop_jvd_in_unit_interval;
          ] );
    ]
