(* Tests for the domain pool and the parallel benchmark harness: result
   ordering, exception propagation, and the central determinism contract —
   bench cells are bit-identical at any --jobs setting because every cell
   owns a keyed PRNG stream. *)

module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
open Repro_benchlib

let exact_float =
  Alcotest.testable (fun ppf f -> Format.fprintf ppf "%.17g" f)
    (fun a b -> Float.compare a b = 0)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_default_jobs () =
  Alcotest.(check bool) "at least one worker" true (Pool.default_jobs () >= 1)

let test_map_matches_sequential () =
  let items = List.init 201 Fun.id in
  let f i = (i * i) + (i mod 7) in
  Alcotest.(check (list int))
    "parallel map equals List.map" (List.map f items) (Pool.map ~jobs:4 f items)

let test_map_array_matches_sequential () =
  let items = Array.init 97 (fun i -> Printf.sprintf "item-%03d" i) in
  let f s = String.uppercase_ascii s ^ "!" in
  Alcotest.(check (array string))
    "parallel map_array equals Array.map" (Array.map f items)
    (Pool.map_array ~jobs:4 f items)

let test_map_array_chunked () =
  let items = Array.init 100 Fun.id in
  let f i = 3 * i in
  Alcotest.(check (array int))
    "chunked claims preserve index order" (Array.map f items)
    (Pool.map_array ~jobs:3 ~chunk:8 f items)

let test_map_array_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map_array ~jobs:4 Fun.id [||]);
  Alcotest.(check (array int)) "singleton" [| 42 |]
    (Pool.map_array ~jobs:4 Fun.id [| 42 |])

let test_jobs_clamped_to_items () =
  (* more workers than tasks must not deadlock or drop results *)
  let items = Array.init 5 Fun.id in
  Alcotest.(check (array int))
    "jobs > n" (Array.map succ items)
    (Pool.map_array ~jobs:64 succ items)

exception Boom of int

let test_exception_lowest_index () =
  let f i = if i = 37 || i = 73 then raise (Boom i) else i in
  match Pool.map_array ~jobs:4 f (Array.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      Alcotest.(check int)
        "lowest-index failure wins, as in a sequential map" 37 i

(* ------------------------------------------------------------------ *)
(* Adversarially skewed task durations                                 *)
(* ------------------------------------------------------------------ *)

let busy_wait seconds =
  let stop = Clock.wall () +. seconds in
  while Clock.wall () < stop do
    ignore (Sys.opaque_identity ())
  done

(* A few hostage-length tasks scattered among hundreds of near-instant
   ones: domains finish wildly out of phase, yet results must land in
   task-index order exactly as a sequential map would produce them. *)
let test_skewed_durations_preserve_order () =
  let n = 240 in
  let f i =
    busy_wait (if i mod 48 = 0 then 0.02 else 0.0001);
    (i * 31) + 7
  in
  Alcotest.(check (array int))
    "skewed durations keep index order"
    (Array.init n (fun i -> (i * 31) + 7))
    (Pool.map_array ~jobs:4 f (Array.init n Fun.id))

(* Strictly decreasing durations are the worst case for chunked claims
   (the first chunk is the heaviest); ordering must still hold. *)
let test_decreasing_durations_with_chunking () =
  let n = 96 in
  let f i =
    busy_wait (float_of_int (n - i) *. 0.0002);
    i + 1000
  in
  Alcotest.(check (array int))
    "front-loaded durations with chunk > 1"
    (Array.init n (fun i -> i + 1000))
    (Pool.map_array ~jobs:3 ~chunk:8 f (Array.init n Fun.id))

(* The lowest-index failing task is the SLOWEST: a fast high-index
   failure completes long before it, but the pool must still re-raise
   the low-index exception, as a sequential map would surface first. *)
let test_slow_low_index_exception_wins () =
  let f i =
    if i = 3 then begin
      busy_wait 0.05;
      raise (Boom 3)
    end
    else if i = 90 then raise (Boom 90)
    else busy_wait 0.0005
  in
  match Pool.map_array ~jobs:4 f (Array.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      Alcotest.(check int) "slow lowest-index failure still wins" 3 i

(* ------------------------------------------------------------------ *)
(* Bench-grid determinism: jobs=1 vs jobs=N bit-identical              *)
(* ------------------------------------------------------------------ *)

(* A CI-sized grid: one theta, two runs, 5% scale. Generated once and
   shared by the grid tests below. *)
let tiny_config =
  { Config.default with Config.imdb_scale = 0.05; runs = 2; thetas = [ 0.01 ] }

let tiny_data =
  let data = ref None in
  fun () ->
    match !data with
    | Some d -> d
    | None ->
        let d =
          Repro_datagen.Imdb.generate ~scale:tiny_config.Config.imdb_scale
            ~seed:tiny_config.Config.seed ()
        in
        data := Some d;
        d

let check_same_results seq par =
  Alcotest.(check int)
    "same number of (query, theta) rows" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Exp_two_table.query_result) (b : Exp_two_table.query_result) ->
      Alcotest.(check string) "query order" a.Exp_two_table.name b.Exp_two_table.name;
      Alcotest.check exact_float "jvd" a.Exp_two_table.jvd b.Exp_two_table.jvd;
      Alcotest.(check int) "truth" a.Exp_two_table.truth b.Exp_two_table.truth;
      List.iter2
        (fun (ca : Exp_two_table.cell) (cb : Exp_two_table.cell) ->
          let ctx = a.Exp_two_table.name ^ "/" ^ ca.Exp_two_table.approach in
          Alcotest.(check string) (ctx ^ ": approach") ca.Exp_two_table.approach
            cb.Exp_two_table.approach;
          Alcotest.(check (array exact_float))
            (ctx ^ ": estimates bit-identical") ca.Exp_two_table.estimates
            cb.Exp_two_table.estimates;
          Alcotest.check exact_float (ctx ^ ": median q-error")
            ca.Exp_two_table.median_qerror cb.Exp_two_table.median_qerror;
          Alcotest.check exact_float (ctx ^ ": relative variance")
            ca.Exp_two_table.rel_variance cb.Exp_two_table.rel_variance;
          Alcotest.(check int) (ctx ^ ": zero runs") ca.Exp_two_table.zero_runs
            cb.Exp_two_table.zero_runs)
        a.Exp_two_table.cells b.Exp_two_table.cells)
    seq par

let test_grid_jobs_invariant () =
  let data = tiny_data () in
  let seq = Exp_two_table.run { tiny_config with Config.jobs = 1 } data in
  let par = Exp_two_table.run { tiny_config with Config.jobs = 3 } data in
  check_same_results seq par

(* With an injected counter clock every timed section lasts exactly one
   step, so every cell's wall average must equal the step — which also
   proves run_cell times ALL runs (a dropped run would shift the mean). *)
let test_grid_injected_clock_and_timing () =
  let data = tiny_data () in
  let config = { tiny_config with Config.jobs = 1 } in
  let step = 0.25 in
  let results = Exp_two_table.run ~clock:(Clock.counter ~step ()) config data in
  List.iter
    (fun (r : Exp_two_table.query_result) ->
      List.iter
        (fun (c : Exp_two_table.cell) ->
          Alcotest.check exact_float
            (r.Exp_two_table.name ^ "/" ^ c.Exp_two_table.approach
           ^ ": wall avg = clock step")
            step c.Exp_two_table.avg_wall_seconds)
        r.Exp_two_table.cells)
    results;
  (* Timing summaries over the same fake-clock results: every query is
     measured, and the wall mean is exactly the step. *)
  let queries = List.length results in
  List.iter
    (fun (s : Timing.summary) ->
      Alcotest.(check int)
        (s.Timing.approach ^ ": all queries measured") queries
        s.Timing.queries_measured;
      Alcotest.(check int)
        (s.Timing.approach ^ ": total queries") queries s.Timing.queries_total;
      Alcotest.check exact_float
        (s.Timing.approach ^ ": wall mean = clock step") step
        s.Timing.mean_wall_seconds)
    (Timing.run config results)

(* ------------------------------------------------------------------ *)
(* Timing summaries on hand-built cells                                *)
(* ------------------------------------------------------------------ *)

let mk_cell approach wall cpu zero =
  {
    Exp_two_table.approach;
    estimates = [| 1.0; 2.0 |];
    median_estimate = 1.5;
    median_qerror = 1.0;
    rel_variance = 0.0;
    avg_sample_tuples = 0.0;
    avg_wall_seconds = wall;
    avg_cpu_seconds = cpu;
    avg_offline_wall_seconds = 0.0;
    zero_runs = zero;
  }

let mk_result name jvd theta cells =
  { Exp_two_table.name; jvd; truth = 100; theta; cells }

let timing_config =
  {
    Config.default with
    Config.thetas = [ 0.01; 0.001 ];
    jvd_threshold = 0.001;
  }

let find_summary label summaries =
  match
    List.find_opt (fun s -> s.Timing.approach = label) summaries
  with
  | Some s -> s
  | None -> Alcotest.fail ("no summary for " ^ label)

let test_timing_summary_means () =
  let results =
    [
      (* small jvd: CSDL-Opt dispatches to "1,diff" *)
      mk_result "Qsmall" 0.0001 0.001
        [
          mk_cell "1,diff" 0.2 0.3 1;
          mk_cell "t,diff" 9.9 9.9 0;
          mk_cell "CS2L" 0.1 0.1 2;
        ];
      (* large jvd: CSDL-Opt dispatches to "t,diff" *)
      mk_result "Qlarge" 0.01 0.001
        [
          mk_cell "1,diff" 9.9 9.9 0;
          mk_cell "t,diff" 0.4 0.5 0;
          mk_cell "CS2L" 0.2 0.2 1;
        ];
      (* wrong theta: must be ignored by the timing protocol *)
      mk_result "Qignored" 0.0001 0.01
        [
          mk_cell "1,diff" 100.0 100.0 9;
          mk_cell "t,diff" 100.0 100.0 9;
          mk_cell "CS2L" 100.0 100.0 9;
        ];
    ]
  in
  let summaries = Timing.run timing_config results in
  let opt = find_summary "CSDL-Opt" summaries in
  Alcotest.check exact_float "opt wall mean" ((0.2 +. 0.4) /. 2.0)
    opt.Timing.mean_wall_seconds;
  Alcotest.check exact_float "opt cpu mean" ((0.3 +. 0.5) /. 2.0)
    opt.Timing.mean_cpu_seconds;
  Alcotest.(check int) "opt measured" 2 opt.Timing.queries_measured;
  Alcotest.(check int) "opt total" 2 opt.Timing.queries_total;
  Alcotest.(check int) "opt zero-estimate runs" 1 opt.Timing.zero_estimate_runs;
  Alcotest.check exact_float "opt fraction under 0.5s" 1.0
    opt.Timing.fraction_under;
  let cs2l = find_summary "CS2L" summaries in
  Alcotest.check exact_float "cs2l wall mean" ((0.1 +. 0.2) /. 2.0)
    cs2l.Timing.mean_wall_seconds;
  Alcotest.(check int) "cs2l zero-estimate runs" 3
    cs2l.Timing.zero_estimate_runs;
  (* threshold 0.15s: 0.1 is under, 0.2 is not *)
  Alcotest.check exact_float "cs2l fraction under" 0.5
    cs2l.Timing.fraction_under

let test_timing_nan_cells_excluded () =
  let results =
    [
      mk_result "Qok" 0.0001 0.001
        [ mk_cell "1,diff" 0.2 0.3 0; mk_cell "CS2L" 0.1 0.1 0 ];
      mk_result "Qnan" 0.01 0.001
        [ mk_cell "t,diff" Float.nan Float.nan 2; mk_cell "CS2L" 0.3 0.3 0 ];
    ]
  in
  (* give Qok a t,diff cell and Qnan a 1,diff cell so lookups succeed *)
  let results =
    match results with
    | [ a; b ] ->
        [
          { a with Exp_two_table.cells = mk_cell "t,diff" 0.9 0.9 0 :: a.Exp_two_table.cells };
          { b with Exp_two_table.cells = mk_cell "1,diff" 0.9 0.9 0 :: b.Exp_two_table.cells };
        ]
    | _ -> assert false
  in
  let opt = find_summary "CSDL-Opt" (Timing.run timing_config results) in
  Alcotest.(check int) "NaN cell not measured" 1 opt.Timing.queries_measured;
  Alcotest.(check int) "but still counted" 2 opt.Timing.queries_total;
  Alcotest.check exact_float "mean over measured cells only" 0.2
    opt.Timing.mean_wall_seconds;
  Alcotest.(check int) "zero runs of ALL cells counted" 2
    opt.Timing.zero_estimate_runs

let test_timing_missing_label_named () =
  let results =
    [ mk_result "Qx" 0.0001 0.001 [ mk_cell "1,diff" 0.1 0.1 0 ] ]
  in
  match Timing.run timing_config results with
  | _ -> Alcotest.fail "expected a Failure naming the missing label"
  | exception Failure msg ->
      Alcotest.(check bool)
        ("message names the label and query: " ^ msg)
        true
        (contains msg "CS2L" && contains msg "Qx")

let test_find_cell_error_message () =
  match
    Exp_two_table.find_cell ~context:"unit test" "nope"
      [ mk_cell "1,diff" 0.1 0.1 0 ]
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool)
        ("message names context, label and candidates: " ^ msg)
        true
        (contains msg "unit test" && contains msg "nope"
        && contains msg "1,diff")

let () =
  Alcotest.run "repro_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map_array matches sequential" `Quick
            test_map_array_matches_sequential;
          Alcotest.test_case "chunked claims" `Quick test_map_array_chunked;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_array_empty_and_singleton;
          Alcotest.test_case "jobs clamped to items" `Quick
            test_jobs_clamped_to_items;
          Alcotest.test_case "lowest-index exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "skewed durations preserve order" `Quick
            test_skewed_durations_preserve_order;
          Alcotest.test_case "decreasing durations with chunking" `Quick
            test_decreasing_durations_with_chunking;
          Alcotest.test_case "slow lowest-index exception wins" `Quick
            test_slow_low_index_exception_wins;
        ] );
      ( "grid determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=3 bit-identical" `Slow
            test_grid_jobs_invariant;
          Alcotest.test_case "injected clock drives timings" `Slow
            test_grid_injected_clock_and_timing;
        ] );
      ( "timing summary",
        [
          Alcotest.test_case "means and fractions" `Quick
            test_timing_summary_means;
          Alcotest.test_case "NaN cells excluded but counted" `Quick
            test_timing_nan_cells_excluded;
          Alcotest.test_case "missing label is named" `Quick
            test_timing_missing_label_named;
          Alcotest.test_case "find_cell error message" `Quick
            test_find_cell_error_message;
        ] );
    ]
