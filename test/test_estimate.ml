(* Integration tests: the full offline-sample -> online-estimate pipeline
   for two-table joins, every spec family, predicates, orientation, and the
   CSDL-Opt hybrid. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema =
  Schema.make
    [ ("k", Schema.T_int); ("attr", Schema.T_int); ("tag", Schema.T_string) ]

let table_of_counts ?(attr = fun _ i -> i) counts =
  let rows =
    List.concat_map
      (fun (v, m) ->
        List.init m (fun i ->
            [|
              Value.Int v;
              Value.Int (attr v i);
              Value.Str (Printf.sprintf "%d-%d" v i);
            |]))
      counts
  in
  Table.of_rows schema rows

let profile_of ta tb = Csdl.Profile.of_tables ta "k" tb "k"

let counts_a = [ (1, 8); (2, 5); (3, 12); (4, 2); (5, 7) ]
let counts_b = [ (1, 4); (2, 9); (3, 3); (5, 6); (6, 10) ]

let table_a = lazy (table_of_counts counts_a)
let table_b = lazy (table_of_counts counts_b)
let profile_ab = lazy (profile_of (Lazy.force table_a) (Lazy.force table_b))

let truth_ab = 8 * 4 + 5 * 9 + 12 * 3 + 7 * 6 (* = 32+45+36+42 = 155 *)

(* ------------------------------------------------------------------ *)
(* Exactness at full sampling                                          *)
(* ------------------------------------------------------------------ *)

let test_cso_exact_at_theta_one () =
  let est =
    Csdl.Estimator.prepare ~sample_first:`A Csdl.Spec.cso ~theta:1.0
      (Lazy.force profile_ab)
  in
  let estimate = Csdl.Estimator.estimate_once est (Prng.create 1) in
  Alcotest.(check (float 1e-6)) "CSO exact" (float_of_int truth_ab) estimate

let test_cs2_exact_at_theta_one () =
  let est =
    Csdl.Estimator.prepare ~sample_first:`A Csdl.Spec.cs2 ~theta:1.0
      (Lazy.force profile_ab)
  in
  let estimate = Csdl.Estimator.estimate_once est (Prng.create 2) in
  Alcotest.(check (float 1e-6)) "CS2 exact" (float_of_int truth_ab) estimate

let test_cs2l_exact_at_theta_one () =
  let est =
    Csdl.Estimator.prepare ~sample_first:`A Csdl.Spec.cs2l ~theta:1.0
      (Lazy.force profile_ab)
  in
  let estimate = Csdl.Estimator.estimate_once est (Prng.create 3) in
  Alcotest.(check (float 1e-6)) "CS2L exact" (float_of_int truth_ab) estimate

let test_scaling_exact_with_predicates_at_theta_one () =
  (* attr v i = i, so "attr < 2" keeps exactly min(2, m) tuples per value. *)
  let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 2) in
  let truth =
    Join.pair_count
      (Join.filtered (Lazy.force table_a) "k" pred)
      (Join.unfiltered (Lazy.force table_b) "k")
  in
  let est =
    Csdl.Estimator.prepare ~sample_first:`A Csdl.Spec.cso ~theta:1.0
      (Lazy.force profile_ab)
  in
  let estimate =
    Csdl.Estimator.estimate_once ~pred_a:pred est (Prng.create 4)
  in
  Alcotest.(check (float 1e-6)) "filtered exact" (float_of_int truth) estimate

(* Regression for the sentry double-count: Lemma 1 / Eq. 6 draw the
   virtual sample from the non-sentry tuples, population N' - V. The old
   code scaled by the full N' and then added the sentry indicator on top,
   inflating every DL estimate by one b-side factor per sampled value —
   visible as exactly +|V| * avg_b at theta = 1 against enumeration. *)
let test_dl_exact_at_theta_one () =
  let counts = List.init 4 (fun i -> (i + 1, 10)) in
  let counts_b = List.init 4 (fun i -> (i + 1, 5)) in
  let ta = table_of_counts counts and tb = table_of_counts counts_b in
  let truth = float_of_int (4 * 10 * 5) in
  List.iter
    (fun (name, spec) ->
      let est =
        Csdl.Estimator.prepare ~sample_first:`A spec ~theta:1.0
          (profile_of ta tb)
      in
      let estimate = Csdl.Estimator.estimate_once est (Prng.create 5) in
      if estimate <> truth then
        Alcotest.failf "%s at theta=1: %.17g <> enumerated %.17g" name
          estimate truth)
    [
      ("CSDL(1,diff)", Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff);
      ("CSDL(1,t)", Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta);
      ("CSDL(t,1)", Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_one);
    ]

(* ------------------------------------------------------------------ *)
(* Unbiasedness of the scaling estimator (CS2L)                        *)
(* ------------------------------------------------------------------ *)

let mean_estimate ?(runs = 3000) ?(theta = 0.4) ?pred_a ?pred_b spec profile =
  let est = Csdl.Estimator.prepare ~sample_first:`A spec ~theta profile in
  let prng = Prng.create 99 in
  let total = ref 0.0 in
  for _ = 1 to runs do
    total := !total +. Csdl.Estimator.estimate_once ?pred_a ?pred_b est prng
  done;
  !total /. float_of_int runs

let test_cs2l_unbiased () =
  let mean = mean_estimate Csdl.Spec.cs2l (Lazy.force profile_ab) in
  let truth = float_of_int truth_ab in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 5%% of truth %.0f" mean truth)
    true
    (Float.abs (mean -. truth) < 0.05 *. truth)

let test_cso_unbiased () =
  let mean = mean_estimate Csdl.Spec.cso (Lazy.force profile_ab) in
  let truth = float_of_int truth_ab in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 10%% of truth %.0f" mean truth)
    true
    (Float.abs (mean -. truth) < 0.10 *. truth)

let test_cs2l_unbiased_with_predicate () =
  let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
  let truth =
    float_of_int
      (Join.pair_count
         (Join.filtered (Lazy.force table_a) "k" pred)
         (Join.unfiltered (Lazy.force table_b) "k"))
  in
  let mean = mean_estimate ~pred_a:pred Csdl.Spec.cs2l (Lazy.force profile_ab) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within 8%% of truth %.0f" mean truth)
    true
    (Float.abs (mean -. truth) < 0.08 *. truth)

(* ------------------------------------------------------------------ *)
(* DL variants: sanity on a bigger, well-behaved join                  *)
(* ------------------------------------------------------------------ *)

let big_profile =
  lazy
    (let counts = List.init 50 (fun i -> (i, 10 + (i mod 17))) in
     profile_of (table_of_counts counts) (table_of_counts counts))

let median_qerror ?(runs = 15) ?(theta = 0.2) spec profile =
  let est = Csdl.Estimator.prepare ~sample_first:`A spec ~theta profile in
  let truth = float_of_int (Csdl.Profile.true_join_size profile) in
  let prng = Prng.create 7 in
  let qs =
    Array.init runs (fun _ ->
        let e = Csdl.Estimator.estimate_once est prng in
        Repro_stats.Qerror.compute ~truth ~estimate:e)
  in
  Repro_util.Summary.median qs

let test_dl_variants_reasonable () =
  List.iter
    (fun spec ->
      let q = median_qerror spec (Lazy.force big_profile) in
      Alcotest.(check bool)
        (Printf.sprintf "%s median q-error %.2f < 4" (Csdl.Spec.to_string spec) q)
        true (q < 4.0))
    [
      Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta;
      Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff;
      Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff;
      Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_one;
    ]

let test_empty_sample_estimates_zero () =
  (* Impossible predicate: filtered sample is empty -> estimate 0 (the
     paper's infinite-q-error failure case). *)
  let est =
    Csdl.Estimator.prepare ~sample_first:`A
      (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.3 (Lazy.force profile_ab)
  in
  let estimate =
    Csdl.Estimator.estimate_once ~pred_a:Predicate.False est (Prng.create 5)
  in
  Alcotest.(check (float 0.0)) "zero" 0.0 estimate

let test_disjoint_tables_estimate_zero () =
  let ta = table_of_counts [ (1, 5); (2, 5) ] in
  let tb = table_of_counts [ (8, 5); (9, 5) ] in
  let profile = profile_of ta tb in
  let est =
    Csdl.Estimator.prepare ~sample_first:`A
      (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.5 profile
  in
  Alcotest.(check (float 0.0)) "no shared values" 0.0
    (Csdl.Estimator.estimate_once est (Prng.create 6))

(* ------------------------------------------------------------------ *)
(* Orientation and PK-FK                                               *)
(* ------------------------------------------------------------------ *)

let pk_table = lazy (table_of_counts (List.init 40 (fun i -> (i, 1))))
let fk_table =
  lazy (table_of_counts (List.init 20 (fun i -> (i, 2 + (i mod 5)))))

let test_fk_side_swaps () =
  (* A = PK side, B = FK side: `Fk_side must swap so the FK table is
     sampled first. *)
  let profile =
    Csdl.Profile.of_tables (Lazy.force pk_table) "k" (Lazy.force fk_table) "k"
  in
  let est =
    Csdl.Estimator.prepare (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.4 profile
  in
  Alcotest.(check bool) "swapped" true (Csdl.Estimator.swapped est);
  (* and the other orientation must not swap *)
  let profile' =
    Csdl.Profile.of_tables (Lazy.force fk_table) "k" (Lazy.force pk_table) "k"
  in
  let est' =
    Csdl.Estimator.prepare (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.4 profile'
  in
  Alcotest.(check bool) "not swapped" false (Csdl.Estimator.swapped est')

let test_swapped_predicates_applied_correctly () =
  (* Predicate on the PK side (original side A). With full sampling and a
     scaling spec the estimate is exact, proving pred_a reached the right
     table after the swap. *)
  let pred = Predicate.Compare (Predicate.Lt, "k", Value.Int 10) in
  let ta = Lazy.force pk_table and tb = Lazy.force fk_table in
  let truth =
    float_of_int
      (Join.pair_count (Join.filtered ta "k" pred) (Join.unfiltered tb "k"))
  in
  let profile = Csdl.Profile.of_tables ta "k" tb "k" in
  let est = Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta:1.0 profile in
  Alcotest.(check bool) "swapped" true (Csdl.Estimator.swapped est);
  let estimate = Csdl.Estimator.estimate_once ~pred_a:pred est (Prng.create 8) in
  Alcotest.(check (float 1e-6)) "exact through swap" truth estimate

let test_m2m_does_not_swap () =
  let est =
    Csdl.Estimator.prepare (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.4 (Lazy.force profile_ab)
  in
  Alcotest.(check bool) "m2m keeps orientation" false (Csdl.Estimator.swapped est)

(* ------------------------------------------------------------------ *)
(* Breakdown plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let test_breakdown_fields () =
  let profile = Lazy.force profile_ab in
  let est =
    Csdl.Estimator.prepare ~sample_first:`A
      (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
      ~theta:0.5 profile
  in
  let synopsis = Csdl.Estimator.draw est (Prng.create 9) in
  let b = Csdl.Estimate.run_with_breakdown synopsis in
  Alcotest.(check bool) "selectivity in [0,1]" true
    (b.Csdl.Estimate.selectivity_a >= 0.0 && b.Csdl.Estimate.selectivity_a <= 1.0);
  Alcotest.(check (float 1e-9)) "unfiltered selectivity is 1" 1.0
    b.Csdl.Estimate.selectivity_a;
  Alcotest.(check bool) "contributing values positive" true
    (b.Csdl.Estimate.contributing_values > 0);
  Alcotest.(check bool) "estimate matches run" true
    (Csdl.Estimate.run synopsis = b.Csdl.Estimate.estimate)

(* ------------------------------------------------------------------ *)
(* Degenerate stored rates                                             *)
(* ------------------------------------------------------------------ *)

let poison_qv (s : Csdl.Sample.t) =
  let entries = Value.Tbl.create (Value.Tbl.length s.Csdl.Sample.entries) in
  Value.Tbl.iter
    (fun v (e : Csdl.Sample.entry) ->
      Value.Tbl.replace entries v { e with Csdl.Sample.q_v = 0.0 })
    s.Csdl.Sample.entries;
  { s with Csdl.Sample.entries }

let test_zero_qv_is_guarded () =
  (* A synopsis whose stored q_v rates were zeroed (bit rot, a broken
     writer): the unchecked path must not divide sampled counts by zero
     into a silent inf — every zero-rate term is guarded to contribute
     nothing — and the checked path must reject the synopsis with a typed
     numeric fault instead of returning anything. *)
  List.iter
    (fun spec ->
      (* theta = 1 samples every tuple, so the draw is non-empty on any
         PRNG stream and the checked path gets past the emptiness guards
         to the rate validation this test is about *)
      let est =
        Csdl.Estimator.prepare ~sample_first:`A spec ~theta:1.0
          (Lazy.force profile_ab)
      in
      let synopsis = Csdl.Estimator.draw est (Prng.create 11) in
      let poisoned =
        {
          synopsis with
          Csdl.Synopsis.sample_a = poison_qv synopsis.Csdl.Synopsis.sample_a;
          sample_b = poison_qv synopsis.Csdl.Synopsis.sample_b;
        }
      in
      let unchecked = Csdl.Estimate.run poisoned in
      Alcotest.(check bool)
        "unchecked estimate stays finite" true
        (Float.is_finite unchecked);
      match Csdl.Estimate.run_checked poisoned with
      | Error (Csdl.Fault.Numeric { what; _ }) ->
          Alcotest.(check bool)
            "fault names the q_v rate" true
            (String.length what > 0
            && String.ends_with ~suffix:"q_v" what)
      | Error e ->
          Alcotest.failf "expected Numeric fault, got %s"
            (Csdl.Fault.error_to_string e)
      | Ok _ -> Alcotest.fail "zero q_v must not pass the checked path")
    [
      Csdl.Spec.cs2;
      Csdl.Spec.cs2l;
      Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff;
    ]

(* ------------------------------------------------------------------ *)
(* CSDL-Opt dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let test_opt_dispatch_low_jvd () =
  (* 2 distinct values over 2000 rows: jvd = 0.001 boundary -> low side
     just below. *)
  let counts = [ (1, 1200); (2, 1300) ] in
  let profile = profile_of (table_of_counts counts) (table_of_counts counts) in
  Alcotest.(check bool) "profile jvd is low" true (profile.Csdl.Profile.jvd < 0.001);
  let est = Csdl.Opt.prepare ~theta:0.01 profile in
  Alcotest.(check string) "variant" "CSDL(1,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec est))

let test_opt_dispatch_high_jvd () =
  let profile = Lazy.force profile_ab in
  Alcotest.(check bool) "profile jvd is high" true (profile.Csdl.Profile.jvd >= 0.001);
  let est = Csdl.Opt.prepare ~theta:0.1 profile in
  Alcotest.(check string) "variant" "CSDL(t,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec est))

let test_opt_budget_aware_dispatch () =
  (* 25 shared values on a 3000-row join: jvd = 25/1500 > 0.001 so the
     paper rule picks (t,diff); the sentry floor (50 tuples) fits half the
     budget at theta = 0.1 (150), so `Budget_aware picks (1,diff). *)
  let counts = List.init 25 (fun i -> (i, 60)) in
  let profile = profile_of (table_of_counts counts) (table_of_counts counts) in
  Alcotest.(check bool) "jvd above paper threshold" true
    (profile.Csdl.Profile.jvd >= 0.001);
  let paper = Csdl.Opt.prepare ~theta:0.1 profile in
  Alcotest.(check string) "paper rule" "CSDL(t,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec paper));
  let aware = Csdl.Opt.prepare ~dispatch:`Budget_aware ~theta:0.1 profile in
  Alcotest.(check string) "budget-aware rule" "CSDL(1,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec aware));
  (* at a budget below the sentry floor, `Budget_aware falls back *)
  let tight = Csdl.Opt.prepare ~dispatch:`Budget_aware ~theta:0.01 profile in
  Alcotest.(check string) "tight budget falls back" "CSDL(t,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec tight))

let test_opt_threshold_override () =
  let profile = Lazy.force profile_ab in
  let est = Csdl.Opt.prepare ~threshold:0.99 ~theta:0.1 profile in
  Alcotest.(check string) "forced low branch" "CSDL(1,diff)"
    (Csdl.Spec.to_string (Csdl.Estimator.spec est))

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_estimates_deterministic_per_seed () =
  let est =
    Csdl.Estimator.prepare ~sample_first:`A
      (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
      ~theta:0.2 (Lazy.force big_profile)
  in
  let run seed = Csdl.Estimator.estimate_once est (Prng.create seed) in
  Alcotest.(check (float 0.0)) "same seed same estimate" (run 42) (run 42)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_estimates_nonnegative =
  QCheck.Test.make ~count:60 ~name:"estimates are non-negative"
    QCheck.(pair (int_range 1 10_000) (int_range 0 13))
    (fun (seed, spec_index) ->
      let specs =
        Csdl.Spec.csdl_variants @ [ Csdl.Spec.cs2; Csdl.Spec.cso; Csdl.Spec.cs2l ]
      in
      let spec = List.nth specs (spec_index mod List.length specs) in
      let est =
        Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.15
          (Lazy.force profile_ab)
      in
      Csdl.Estimator.estimate_once est (Prng.create seed) >= 0.0)

let prop_full_predicate_equals_no_predicate =
  QCheck.Test.make ~count:30 ~name:"True predicate is a no-op"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let est =
        Csdl.Estimator.prepare ~sample_first:`A
          (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
          ~theta:0.3 (Lazy.force profile_ab)
      in
      let synopsis = Csdl.Estimator.draw est (Prng.create seed) in
      Csdl.Estimator.estimate est synopsis
      = Csdl.Estimator.estimate ~pred_a:Predicate.True ~pred_b:Predicate.True est
          synopsis)

let () =
  Alcotest.run "csdl_estimate"
    [
      ( "exactness",
        [
          Alcotest.test_case "CSO theta=1" `Quick test_cso_exact_at_theta_one;
          Alcotest.test_case "CS2 theta=1" `Quick test_cs2_exact_at_theta_one;
          Alcotest.test_case "CS2L theta=1" `Quick test_cs2l_exact_at_theta_one;
          Alcotest.test_case "DL variants theta=1 (sentry not double-counted)"
            `Quick test_dl_exact_at_theta_one;
          Alcotest.test_case "filtered theta=1" `Quick
            test_scaling_exact_with_predicates_at_theta_one;
        ] );
      ( "unbiasedness",
        [
          Alcotest.test_case "CS2L unbiased" `Slow test_cs2l_unbiased;
          Alcotest.test_case "CSO unbiased" `Slow test_cso_unbiased;
          Alcotest.test_case "CS2L unbiased filtered" `Slow
            test_cs2l_unbiased_with_predicate;
        ] );
      ( "dl_variants",
        [
          Alcotest.test_case "reasonable accuracy" `Slow test_dl_variants_reasonable;
          Alcotest.test_case "empty sample -> 0" `Quick test_empty_sample_estimates_zero;
          Alcotest.test_case "disjoint tables -> 0" `Quick
            test_disjoint_tables_estimate_zero;
        ] );
      ( "orientation",
        [
          Alcotest.test_case "FK side swaps" `Quick test_fk_side_swaps;
          Alcotest.test_case "swapped predicates" `Quick
            test_swapped_predicates_applied_correctly;
          Alcotest.test_case "m2m keeps orientation" `Quick test_m2m_does_not_swap;
        ] );
      ( "breakdown",
        [ Alcotest.test_case "fields" `Quick test_breakdown_fields ] );
      ( "degenerate rates",
        [
          Alcotest.test_case "zero q_v is guarded" `Quick
            test_zero_qv_is_guarded;
        ] );
      ( "opt",
        [
          Alcotest.test_case "low jvd" `Quick test_opt_dispatch_low_jvd;
          Alcotest.test_case "high jvd" `Quick test_opt_dispatch_high_jvd;
          Alcotest.test_case "threshold override" `Quick test_opt_threshold_override;
          Alcotest.test_case "budget-aware dispatch" `Quick test_opt_budget_aware_dispatch;
        ] );
      ( "determinism",
        [ Alcotest.test_case "per seed" `Quick test_estimates_deterministic_per_seed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_estimates_nonnegative; prop_full_predicate_equals_no_predicate ] );
    ]
