(* Tests for the synopsis store: registry behaviour, binary persistence
   (bit-identical rehydration, typed rejection of bad files) and the LRU
   synopsis cache. *)

open Repro_relation
module Prng = Repro_util.Prng

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let tables =
  lazy
    (let a = table_of_counts [ (1, 12); (2, 7); (3, 20) ] in
     let b = table_of_counts [ (1, 5); (2, 16); (3, 4) ] in
     let fk = table_of_counts [ (1, 3); (2, 2); (3, 4) ] in
     let pk = table_of_counts (List.init 10 (fun i -> (i, 1))) in
     [ ("a", a); ("b", b); ("fk", fk); ("pk", pk) ])

let table name = List.assoc name (Lazy.force tables)

let resolve_table name =
  match List.assoc_opt name (Lazy.force tables) with
  | Some t -> t
  | None -> raise Not_found

let build_store () =
  let store = Csdl.Store.create () in
  let register key ta tb spec =
    let profile = Csdl.Profile.of_tables (table ta) "k" (table tb) "k" in
    let estimator = Csdl.Estimator.prepare spec ~theta:0.5 profile in
    let synopsis = Csdl.Estimator.draw estimator (Prng.create 7) in
    Csdl.Store.add store ~key ~table_a:ta ~table_b:tb estimator synopsis
  in
  register "a-b" "a" "b" (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta);
  register "pk-fk" "pk" "fk" Csdl.Spec.cs2l;
  store

let test_store_registry () =
  let store = build_store () in
  Alcotest.(check (list string)) "keys" [ "a-b"; "pk-fk" ] (Csdl.Store.keys store);
  Alcotest.(check bool) "mem" true (Csdl.Store.mem store "a-b");
  Alcotest.(check bool) "footprint positive" true (Csdl.Store.total_tuples store > 0);
  Csdl.Store.remove store "a-b";
  Alcotest.(check bool) "removed" false (Csdl.Store.mem store "a-b")

let test_store_estimate () =
  let store = build_store () in
  let estimate = Csdl.Store.estimate store ~key:"a-b" in
  Alcotest.(check bool) "positive estimate" true (estimate > 0.0);
  Alcotest.check_raises "unknown key" Not_found (fun () ->
      ignore (Csdl.Store.estimate store ~key:"nope"))

let test_store_estimate_orientation () =
  (* the pk-fk entry was registered with the PK table as side A; the
     estimator swaps internally, and the store must keep mapping pred_a to
     the PK table. A predicate selecting no PK rows must zero the
     estimate. *)
  let store = build_store () in
  let unfiltered = Csdl.Store.estimate store ~key:"pk-fk" in
  Alcotest.(check bool) "unfiltered positive" true (unfiltered > 0.0);
  let none = Csdl.Store.estimate store ~key:"pk-fk" ~pred_a:Predicate.False in
  Alcotest.(check (float 0.0)) "impossible pred on A zeroes" 0.0 none

(* ---------------- persistence ---------------- *)

let with_saved_store f =
  let store = build_store () in
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csdl.Store.save store path;
      f store path)

let test_store_roundtrip () =
  with_saved_store (fun store path ->
      let back = Csdl.Store.load ~resolve_table path in
      Alcotest.(check (list string)) "keys preserved" (Csdl.Store.keys store)
        (Csdl.Store.keys back);
      Alcotest.(check int) "footprint preserved"
        (Csdl.Store.total_tuples store)
        (Csdl.Store.total_tuples back);
      List.iter
        (fun key ->
          let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
          let before = Csdl.Store.estimate store ~key ~pred_a:pred in
          let after = Csdl.Store.estimate back ~key ~pred_a:pred in
          (* bit-identical, not approximately equal: the decoder rebuilds
             the sample hashtables in their original iteration order, so
             even float summation order is preserved *)
          if before <> after then
            Alcotest.failf "%s estimate drifted: %h vs %h" key before after)
        (Csdl.Store.keys store))

(* The tentpole guarantee: serialize -> deserialize -> estimate is
   bit-identical to estimating against the freshly drawn synopsis, for
   every variant, at more than one theta. *)
let variant_estimators =
  [
    ("csdl(1,diff)", fun ~theta profile ->
      Csdl.Estimator.prepare
        (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
        ~theta profile);
    ("csdl(t,diff)", fun ~theta profile ->
      Csdl.Estimator.prepare
        (Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff)
        ~theta profile);
    ("csdl-opt", fun ~theta profile -> Csdl.Opt.prepare ~theta profile);
    ("cs2", fun ~theta profile ->
      Csdl.Estimator.prepare Csdl.Spec.cs2 ~theta profile);
    ("cso", fun ~theta profile ->
      Csdl.Estimator.prepare Csdl.Spec.cso ~theta profile);
    ("cs2l", fun ~theta profile ->
      Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile);
  ]

let test_roundtrip_bit_identical_all_variants () =
  let pred_a = Predicate.Compare (Predicate.Lt, "attr", Value.Int 9) in
  let pred_b = Predicate.Compare (Predicate.Gt, "attr", Value.Int 0) in
  List.iter
    (fun theta ->
      List.iter
        (fun (name, prepare) ->
          let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
          let estimator = prepare ~theta profile in
          let synopsis = Csdl.Estimator.draw estimator (Prng.create 42) in
          let store = Csdl.Store.create () in
          Csdl.Store.add store ~key:"q" ~table_a:"a" ~table_b:"b" estimator
            synopsis;
          let fresh = Csdl.Store.estimate store ~key:"q" ~pred_a ~pred_b in
          let path = Filename.temp_file "repro" ".synopses" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Csdl.Store.save store path;
              let back = Csdl.Store.load ~resolve_table path in
              let thawed = Csdl.Store.estimate back ~key:"q" ~pred_a ~pred_b in
              if fresh <> thawed then
                Alcotest.failf "%s theta=%g: %h <> %h after roundtrip" name
                  theta fresh thawed))
        variant_estimators)
    [ 0.5; 1.0 ]

(* ---------------- flat hot path vs legacy reference ---------------- *)

(* A transcription of the pre-flat online estimator: per-value iteration
   over the semijoin side, [Value.Tbl.find_opt] back into the first side
   per value, the predicate re-evaluated through [Sample.filtered_count].
   Values are visited in the canonical [Shard_key] order — the one order
   every float accumulation uses since the sharded-synopsis refactor. The
   production path ([Estimate.run], a linear pass over Synopsis_flat
   columns since the columnar refactor) must agree bit for bit — same
   scan order, same float accumulation order, same zero-count guards. *)
let legacy_reference_estimate ~pred_a ~pred_b (synopsis : Csdl.Synopsis.t) =
  let open Csdl in
  let compile_for (sample : Sample.t) = function
    | Predicate.True -> fun (_ : Value.t array) -> true
    | p -> Predicate.compile p (Table.schema sample.Sample.table)
  in
  let filter_entry sample pass entry =
    ( Sample.filtered_count sample pass entry,
      Sample.sentry_passes sample pass entry )
  in
  let indicator b = if b then 1.0 else 0.0 in
  let { Synopsis.resolved; sample_a; sample_b; n_prime } = synopsis in
  let sentry_spec = resolved.Budget.spec.Spec.sentry in
  let pass_a = compile_for sample_a pred_a in
  let pass_b = compile_for sample_b pred_b in
  let b_factor (count, sentry) ~u_v =
    let scaled = if count = 0 then 0.0 else float_of_int count /. u_v in
    if sentry_spec then scaled +. indicator sentry else scaled
  in
  match resolved.Budget.spec.Spec.method_ with
  | Spec.Scaling ->
      let total = ref 0.0 in
      List.iter
        (fun (v, (entry_b : Sample.entry)) ->
          match Value.Tbl.find_opt sample_a.Sample.entries v with
          | None -> ()
          | Some entry_a ->
              let a_count, a_sentry = filter_entry sample_a pass_a entry_a in
              let fb = filter_entry sample_b pass_b entry_b in
              let a_scaled =
                if a_count = 0 then 0.0
                else float_of_int a_count /. entry_a.Sample.q_v
              in
              let a_term =
                if sentry_spec then a_scaled +. indicator a_sentry
                else a_scaled
              in
              let b_term = b_factor fb ~u_v:entry_b.Sample.q_v in
              let term = a_term *. b_term /. entry_a.Sample.p_v in
              if term > 0.0 then total := !total +. term)
        (Shard_key.sorted_bindings sample_b.Sample.entries);
      !total
  | Spec.Discrete_learning ->
      let base_q = resolved.Budget.base_q in
      let filtered_a =
        Value.Tbl.create (Value.Tbl.length sample_a.Sample.entries)
      in
      let filtered_tuples = ref 0 in
      let virtual_counts = ref [] in
      List.iter
        (fun (v, (entry : Sample.entry)) ->
          let ((count, sentry) as f) = filter_entry sample_a pass_a entry in
          Value.Tbl.add filtered_a v f;
          filtered_tuples :=
            !filtered_tuples + count + (if sentry then 1 else 0);
          if count > 0 && entry.Sample.q_v > 0.0 then
            let virtual_count =
              float_of_int count *. (base_q /. entry.Sample.q_v)
            in
            if virtual_count > 0.0 then
              virtual_counts := virtual_count :: !virtual_counts)
        (Shard_key.sorted_bindings sample_a.Sample.entries);
      let total_tuples = Sample.total_tuples sample_a in
      if total_tuples = 0 then 0.0
      else begin
        let selectivity =
          float_of_int !filtered_tuples /. float_of_int total_tuples
        in
        let learned = Discrete_learning.learn (Array.of_list !virtual_counts) in
        let virtual_population =
          if sentry_spec then
            Float.max 0.0
              (n_prime -. float_of_int (Sample.sentry_count sample_a))
          else n_prime
        in
        let n_filtered = virtual_population *. selectivity in
        let total = ref 0.0 in
        List.iter
          (fun (v, (entry_b : Sample.entry)) ->
            match Value.Tbl.find_opt filtered_a v with
            | None -> ()
            | Some (a_count, a_sentry) ->
                let entry_a = Value.Tbl.find sample_a.Sample.entries v in
                let x_v =
                  if a_count = 0 || entry_a.Sample.q_v <= 0.0 then 0.0
                  else
                    Discrete_learning.probability_of_count learned
                      (float_of_int a_count *. (base_q /. entry_a.Sample.q_v))
                in
                let a_term =
                  x_v *. n_filtered
                  +. (if sentry_spec then indicator a_sentry else 0.0)
                in
                let fb = filter_entry sample_b pass_b entry_b in
                let b_term = b_factor fb ~u_v:entry_b.Sample.q_v in
                let term = a_term *. b_term /. entry_a.Sample.p_v in
                if term > 0.0 then total := !total +. term)
          (Shard_key.sorted_bindings sample_b.Sample.entries);
        !total
      end

let test_flat_matches_legacy_reference () =
  let preds =
    [
      (Predicate.True, Predicate.True);
      ( Predicate.Compare (Predicate.Lt, "attr", Value.Int 9),
        Predicate.Compare (Predicate.Gt, "attr", Value.Int 0) );
      (Predicate.Compare (Predicate.Le, "attr", Value.Int 4), Predicate.True);
    ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun (name, prepare) ->
          let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
          let estimator = prepare ~theta profile in
          let synopsis = Csdl.Estimator.draw estimator (Prng.create 42) in
          List.iter
            (fun (pred_a, pred_b) ->
              let flat = Csdl.Estimate.run ~pred_a ~pred_b synopsis in
              let reference =
                legacy_reference_estimate ~pred_a ~pred_b synopsis
              in
              if flat <> reference then
                Alcotest.failf "%s theta=%g: flat %h <> legacy reference %h"
                  name theta flat reference)
            preds)
        variant_estimators)
    [ 0.5; 1.0 ]

(* Structural validation is memoized on the flat view: registration and
   load each validate once, and no amount of estimates re-walks the
   synopsis — the per-request O(synopsis) validation waste the refactor
   removed, pinned via the global validation counter. *)
let test_validation_runs_once_per_load () =
  let runs () = Csdl.Synopsis_flat.validation_runs () in
  let c0 = runs () in
  let store = build_store () in
  Alcotest.(check int) "one validation per registered synopsis" 2 (runs () - c0);
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csdl.Store.save store path;
      let back = Csdl.Store.load ~resolve_table path in
      Alcotest.(check int) "one more per loaded synopsis" 4 (runs () - c0);
      let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
      List.iter
        (fun key ->
          for _ = 1 to 5 do
            ignore (Csdl.Store.estimate back ~key ~pred_a:pred)
          done)
        (Csdl.Store.keys back);
      Alcotest.(check int) "estimates never re-validate" 4 (runs () - c0))

(* [Sample.sentry_count] is precomputed at draw time and recomputed at
   decode; both must agree with a fold over the entries. *)
let test_sentry_count_precomputed () =
  let count_by_fold (s : Csdl.Sample.t) =
    Value.Tbl.fold
      (fun _ (e : Csdl.Sample.entry) acc ->
        match e.Csdl.Sample.sentry_row with Some _ -> acc + 1 | None -> acc)
      s.Csdl.Sample.entries 0
  in
  let check_sample what s =
    Alcotest.(check int) what (count_by_fold s) (Csdl.Sample.sentry_count s)
  in
  List.iter
    (fun (name, prepare) ->
      let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
      let estimator = prepare ~theta:0.5 profile in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create 9) in
      check_sample (name ^ ": drawn side A") synopsis.Csdl.Synopsis.sample_a;
      check_sample (name ^ ": drawn side B") synopsis.Csdl.Synopsis.sample_b;
      let swapped =
        synopsis.Csdl.Synopsis.sample_a.Csdl.Sample.table == table "b"
      in
      let stored =
        {
          Csdl.Synopsis_store.key = "s";
          table_a = "a";
          table_b = "b";
          swapped;
          fingerprint_a = Table.fingerprint (table "a");
          fingerprint_b = Table.fingerprint (table "b");
          prng_key = "";
          shards = 1;
          sentinels = [];
          synopsis;
        }
      in
      match
        Csdl.Synopsis_store.decode ~resolve_table
          (Csdl.Synopsis_store.encode [ stored ])
      with
      | Error e ->
          Alcotest.failf "%s: decode failed: %s" name
            (Csdl.Fault.error_to_string e)
      | Ok [ back ] ->
          check_sample (name ^ ": decoded side A")
            back.Csdl.Synopsis_store.synopsis.Csdl.Synopsis.sample_a;
          check_sample (name ^ ": decoded side B")
            back.Csdl.Synopsis_store.synopsis.Csdl.Synopsis.sample_b
      | Ok stored ->
          Alcotest.failf "%s: expected 1 stored synopsis, got %d" name
            (List.length stored))
    variant_estimators

let test_prng_key_and_info_roundtrip () =
  let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
  (* theta = 1 samples every tuple, so i_tuples > 0 holds on any stream *)
  let estimator = Csdl.Opt.prepare ~theta:1.0 profile in
  let synopsis = Csdl.Estimator.draw estimator (Prng.create 3) in
  let store = Csdl.Store.create () in
  Csdl.Store.add ~prng_key:"3:synopsis/a-b" store ~key:"a-b" ~table_a:"a"
    ~table_b:"b" estimator synopsis;
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csdl.Store.save store path;
      let back = Csdl.Store.load ~resolve_table path in
      match Csdl.Store.info back "a-b" with
      | None -> Alcotest.fail "info missing after roundtrip"
      | Some i ->
          Alcotest.(check string) "prng key" "3:synopsis/a-b"
            i.Csdl.Store.i_prng_key;
          Alcotest.(check string) "table a" "a" i.Csdl.Store.i_table_a;
          Alcotest.(check string) "table b" "b" i.Csdl.Store.i_table_b;
          Alcotest.(check (float 0.0)) "theta" 1.0 i.Csdl.Store.i_theta;
          Alcotest.(check bool) "tuples recorded" true
            (i.Csdl.Store.i_tuples > 0))

(* ---------------- typed rejection of bad files ---------------- *)

let patch_byte path offset f =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  Bytes.set b offset (f (Bytes.get b offset));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let expect_mismatch what ?(resolve = resolve_table) path =
  match Csdl.Store.load_result ~resolve_table:resolve path with
  | Error (Csdl.Fault.Store_mismatch { what = w; _ }) ->
      Alcotest.(check string) "mismatch kind" what w
  | Error e ->
      Alcotest.failf "unexpected fault: %s" (Csdl.Fault.error_to_string e)
  | Ok _ -> Alcotest.fail "expected a Store_mismatch error"

let test_store_rejects_corrupted_payload () =
  with_saved_store (fun _ path ->
      (* flip one bit in the payload (header is 40 bytes) *)
      patch_byte path 45 (fun c -> Char.chr (Char.code c lxor 0x01));
      expect_mismatch "checksum" path)

let test_store_rejects_wrong_version () =
  with_saved_store (fun _ path ->
      (* the version i64 sits right after the 8-byte magic *)
      patch_byte path 8 (fun _ -> '\xf7');
      expect_mismatch "version" path)

let test_store_rejects_truncation () =
  with_saved_store (fun _ path ->
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      expect_mismatch "payload" path)

let test_store_rejects_fingerprint_mismatch () =
  with_saved_store (fun _ path ->
      (* same names, different data: "a" resolves to the fk table *)
      let resolve = function "a" -> table "fk" | name -> resolve_table name in
      expect_mismatch "fingerprint" ~resolve path)

let test_store_load_rejects_garbage () =
  let path = Filename.temp_file "repro" ".synopses" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a store";
      close_out oc;
      (match Csdl.Store.load ~resolve_table path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure");
      expect_mismatch "header" path)

let test_store_replace_same_key () =
  let store = build_store () in
  let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
  let estimator =
    Csdl.Estimator.prepare (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff)
      ~theta:0.5 profile
  in
  let synopsis = Csdl.Estimator.draw estimator (Prng.create 9) in
  Csdl.Store.add store ~key:"a-b" ~table_a:"a" ~table_b:"b" estimator synopsis;
  Alcotest.(check int) "still two keys" 2 (List.length (Csdl.Store.keys store))

(* ---------------- LRU synopsis cache ---------------- *)

let cache_key i =
  {
    Csdl.Synopsis_cache.fp_a = Int64.of_int i;
    fp_b = 0L;
    variant = "csdl-opt";
    theta = 0.5;
    prng_key = "";
  }

let draw_synopsis seed =
  let profile = Csdl.Profile.of_tables (table "a") "k" (table "b") "k" in
  let estimator = Csdl.Opt.prepare ~theta:0.5 profile in
  Csdl.Estimator.draw estimator (Prng.create seed)

let test_cache_hit_miss_counters () =
  let cache = Csdl.Synopsis_cache.create ~capacity:4 () in
  let s1 = draw_synopsis 1 in
  Alcotest.(check bool) "initial miss" true
    (Csdl.Synopsis_cache.find cache (cache_key 1) = None);
  Csdl.Synopsis_cache.insert cache (cache_key 1) s1;
  (match Csdl.Synopsis_cache.find cache (cache_key 1) with
  | Some s -> Alcotest.(check bool) "hit returns the same object" true (s == s1)
  | None -> Alcotest.fail "expected a hit");
  let built = ref 0 in
  let s =
    Csdl.Synopsis_cache.find_or_build cache (cache_key 1) (fun () ->
        incr built;
        draw_synopsis 99)
  in
  Alcotest.(check bool) "find_or_build hit skips build" true
    (s == s1 && !built = 0);
  ignore
    (Csdl.Synopsis_cache.find_or_build cache (cache_key 2) (fun () ->
         incr built;
         draw_synopsis 2));
  Alcotest.(check int) "miss builds" 1 !built;
  Alcotest.(check int) "hits" 2 (Csdl.Synopsis_cache.hits cache);
  Alcotest.(check int) "misses" 2 (Csdl.Synopsis_cache.misses cache);
  Alcotest.(check int) "no evictions" 0 (Csdl.Synopsis_cache.evictions cache);
  Alcotest.(check int) "length" 2 (Csdl.Synopsis_cache.length cache)

let test_cache_lru_eviction_order () =
  let cache = Csdl.Synopsis_cache.create ~capacity:2 () in
  Csdl.Synopsis_cache.insert cache (cache_key 1) (draw_synopsis 1);
  Csdl.Synopsis_cache.insert cache (cache_key 2) (draw_synopsis 2);
  (* touch 1 so 2 becomes the LRU entry *)
  ignore (Csdl.Synopsis_cache.find cache (cache_key 1));
  Csdl.Synopsis_cache.insert cache (cache_key 3) (draw_synopsis 3);
  Alcotest.(check int) "one eviction" 1 (Csdl.Synopsis_cache.evictions cache);
  Alcotest.(check bool) "LRU entry evicted" true
    (Csdl.Synopsis_cache.find cache (cache_key 2) = None);
  Alcotest.(check bool) "recently used survives" true
    (Csdl.Synopsis_cache.find cache (cache_key 1) <> None);
  Alcotest.(check bool) "new entry present" true
    (Csdl.Synopsis_cache.find cache (cache_key 3) <> None);
  Alcotest.(check int) "capacity respected" 2 (Csdl.Synopsis_cache.length cache)

let test_save_leaves_no_temp_files () =
  (* crash-safe save goes through a temp file + atomic rename in the
     target directory; a successful save must leave exactly the store
     file behind, including when it replaces an existing one *)
  let dir = Filename.temp_file "repro-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let store = build_store () in
      let path = Filename.concat dir "synopses.bin" in
      Csdl.Store.save store path;
      Alcotest.(check (array string))
        "only the store file after first save" [| "synopses.bin" |]
        (Sys.readdir dir);
      Csdl.Store.save store path;
      Alcotest.(check (array string))
        "only the store file after overwrite" [| "synopses.bin" |]
        (Sys.readdir dir);
      let back = Csdl.Store.load ~resolve_table path in
      Alcotest.(check (list string))
        "replaced file loads" (Csdl.Store.keys store) (Csdl.Store.keys back))

let test_save_into_missing_directory_raises () =
  let store = build_store () in
  let path = "/nonexistent-repro-dir/synopses.bin" in
  (match Csdl.Store.save store path with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "no partial target" false (Sys.file_exists path)

let test_cache_stats_accessor () =
  let cache = Csdl.Synopsis_cache.create ~capacity:2 () in
  ignore (Csdl.Synopsis_cache.find cache (cache_key 1));
  Csdl.Synopsis_cache.insert cache (cache_key 1) (draw_synopsis 1);
  ignore (Csdl.Synopsis_cache.find cache (cache_key 1));
  Csdl.Synopsis_cache.insert cache (cache_key 2) (draw_synopsis 2);
  Csdl.Synopsis_cache.insert cache (cache_key 3) (draw_synopsis 3);
  let s = Csdl.Synopsis_cache.stats cache in
  Alcotest.(check int) "stats hits" (Csdl.Synopsis_cache.hits cache)
    s.Csdl.Synopsis_cache.s_hits;
  Alcotest.(check int) "stats misses" (Csdl.Synopsis_cache.misses cache)
    s.Csdl.Synopsis_cache.s_misses;
  Alcotest.(check int) "stats evictions"
    (Csdl.Synopsis_cache.evictions cache)
    s.Csdl.Synopsis_cache.s_evictions;
  Alcotest.(check int) "stats size" (Csdl.Synopsis_cache.length cache)
    s.Csdl.Synopsis_cache.s_size;
  Alcotest.(check int) "one eviction happened" 1 s.Csdl.Synopsis_cache.s_evictions

let test_cache_eviction_under_concurrent_reads () =
  (* the cache is not thread-safe by contract; servers wrap it in a mutex
     and keep evicting under concurrent readers — the tallies must stay
     exact and every hit must return the synopsis inserted for that key *)
  let cache = Csdl.Synopsis_cache.create ~capacity:2 () in
  let mutex = Mutex.create () in
  let nkeys = 6 in
  let synopses = Array.init nkeys (fun i -> draw_synopsis (100 + i)) in
  let ops_per_domain = 200 in
  let wrong = Atomic.make 0 in
  let worker d () =
    for op = 0 to ops_per_domain - 1 do
      let i = (op + (d * 7)) mod nkeys in
      Mutex.lock mutex;
      let got =
        Csdl.Synopsis_cache.find_or_build cache (cache_key i) (fun () ->
            synopses.(i))
      in
      Mutex.unlock mutex;
      if not (got == synopses.(i)) then Atomic.incr wrong
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let s = Csdl.Synopsis_cache.stats cache in
  Alcotest.(check int) "no cross-key mixups" 0 (Atomic.get wrong);
  Alcotest.(check int) "every lookup tallied (hits + misses)"
    (4 * ops_per_domain)
    (s.Csdl.Synopsis_cache.s_hits + s.Csdl.Synopsis_cache.s_misses);
  Alcotest.(check int) "size pinned at capacity" 2 s.Csdl.Synopsis_cache.s_size;
  Alcotest.(check int) "every displaced insert counted as an eviction"
    (s.Csdl.Synopsis_cache.s_misses - s.Csdl.Synopsis_cache.s_size)
    s.Csdl.Synopsis_cache.s_evictions

let test_cache_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Synopsis_cache.create: capacity must be positive")
    (fun () -> ignore (Csdl.Synopsis_cache.create ~capacity:0 ()))

let () =
  Alcotest.run "csdl_store"
    [
      ( "store",
        [
          Alcotest.test_case "registry" `Quick test_store_registry;
          Alcotest.test_case "estimate" `Quick test_store_estimate;
          Alcotest.test_case "orientation" `Quick test_store_estimate_orientation;
          Alcotest.test_case "save/load roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "flat path matches legacy reference" `Quick
            test_flat_matches_legacy_reference;
          Alcotest.test_case "validation runs once per load" `Quick
            test_validation_runs_once_per_load;
          Alcotest.test_case "sentry count precomputed" `Quick
            test_sentry_count_precomputed;
          Alcotest.test_case "bit-identical roundtrip, all variants" `Quick
            test_roundtrip_bit_identical_all_variants;
          Alcotest.test_case "prng key and info" `Quick
            test_prng_key_and_info_roundtrip;
          Alcotest.test_case "rejects corrupted payload" `Quick
            test_store_rejects_corrupted_payload;
          Alcotest.test_case "rejects wrong version" `Quick
            test_store_rejects_wrong_version;
          Alcotest.test_case "rejects truncation" `Quick
            test_store_rejects_truncation;
          Alcotest.test_case "rejects fingerprint mismatch" `Quick
            test_store_rejects_fingerprint_mismatch;
          Alcotest.test_case "rejects garbage" `Quick test_store_load_rejects_garbage;
          Alcotest.test_case "replace key" `Quick test_store_replace_same_key;
          Alcotest.test_case "atomic save leaves no temp files" `Quick
            test_save_leaves_no_temp_files;
          Alcotest.test_case "save into missing directory" `Quick
            test_save_into_missing_directory_raises;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick
            test_cache_hit_miss_counters;
          Alcotest.test_case "LRU eviction order" `Quick
            test_cache_lru_eviction_order;
          Alcotest.test_case "stats accessor" `Quick test_cache_stats_accessor;
          Alcotest.test_case "eviction under concurrent reads" `Quick
            test_cache_eviction_under_concurrent_reads;
          Alcotest.test_case "bad capacity" `Quick test_cache_rejects_bad_capacity;
        ] );
    ]
