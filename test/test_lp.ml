(* Tests for the simplex solver and the L1 fitting layer. *)

open Repro_lp

let check_float = Alcotest.(check (float 1e-6))

let solve_exn problem =
  match Simplex.solve problem with
  | Simplex.Optimal { objective_value; solution } -> (objective_value, solution)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Failed reason -> Alcotest.failf "unexpected failure: %s" reason

(* ------------------------------------------------------------------ *)
(* Hand-checked LPs                                                    *)
(* ------------------------------------------------------------------ *)

let test_simplex_basic_le () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y); optimum at
     intersection (8/5, 6/5), objective 14/5. *)
  let problem =
    {
      Simplex.objective = [| -1.0; -1.0 |];
      constraints =
        [
          { Simplex.coefficients = [| 1.0; 2.0 |]; relation = Simplex.Le; rhs = 4.0 };
          { Simplex.coefficients = [| 3.0; 1.0 |]; relation = Simplex.Le; rhs = 6.0 };
        ];
    }
  in
  let objective_value, solution = solve_exn problem in
  check_float "objective" (-2.8) objective_value;
  check_float "x" 1.6 solution.(0);
  check_float "y" 1.2 solution.(1)

let test_simplex_equality () =
  (* min x + y s.t. x + y = 3, x >= 0, y >= 0; any split is optimal with
     objective 3. *)
  let problem =
    {
      Simplex.objective = [| 1.0; 1.0 |];
      constraints =
        [ { Simplex.coefficients = [| 1.0; 1.0 |]; relation = Simplex.Eq; rhs = 3.0 } ];
    }
  in
  let objective_value, solution = solve_exn problem in
  check_float "objective" 3.0 objective_value;
  check_float "feasibility" 3.0 (solution.(0) +. solution.(1))

let test_simplex_ge () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 0, y >= 0. Optimum x=4, y=0, obj 8. *)
  let problem =
    {
      Simplex.objective = [| 2.0; 3.0 |];
      constraints =
        [ { Simplex.coefficients = [| 1.0; 1.0 |]; relation = Simplex.Ge; rhs = 4.0 } ];
    }
  in
  let objective_value, solution = solve_exn problem in
  check_float "objective" 8.0 objective_value;
  check_float "x" 4.0 solution.(0);
  check_float "y" 0.0 solution.(1)

let test_simplex_infeasible () =
  (* x <= 1 and x >= 2 cannot both hold. *)
  let problem =
    {
      Simplex.objective = [| 1.0 |];
      constraints =
        [
          { Simplex.coefficients = [| 1.0 |]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coefficients = [| 1.0 |]; relation = Simplex.Ge; rhs = 2.0 };
        ];
    }
  in
  match Simplex.solve problem with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  (* min -x with no upper bound on x. *)
  let problem =
    {
      Simplex.objective = [| -1.0 |];
      constraints =
        [ { Simplex.coefficients = [| 1.0 |]; relation = Simplex.Ge; rhs = 0.0 } ];
    }
  in
  match Simplex.solve problem with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -2  (i.e. x >= 2). Tests RHS sign normalisation. *)
  let problem =
    {
      Simplex.objective = [| 1.0 |];
      constraints =
        [ { Simplex.coefficients = [| -1.0 |]; relation = Simplex.Le; rhs = -2.0 } ];
    }
  in
  let objective_value, solution = solve_exn problem in
  check_float "objective" 2.0 objective_value;
  check_float "x" 2.0 solution.(0)

let test_simplex_degenerate () =
  (* Degenerate vertex: three constraints through one point; must terminate. *)
  let problem =
    {
      Simplex.objective = [| -1.0; -1.0 |];
      constraints =
        [
          { Simplex.coefficients = [| 1.0; 0.0 |]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coefficients = [| 0.0; 1.0 |]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coefficients = [| 1.0; 1.0 |]; relation = Simplex.Le; rhs = 2.0 };
        ];
    }
  in
  let objective_value, _ = solve_exn problem in
  check_float "objective" (-2.0) objective_value

let test_simplex_redundant_equality () =
  (* Two identical equalities: phase 1 leaves a redundant artificial. *)
  let problem =
    {
      Simplex.objective = [| 1.0; 2.0 |];
      constraints =
        [
          { Simplex.coefficients = [| 1.0; 1.0 |]; relation = Simplex.Eq; rhs = 2.0 };
          { Simplex.coefficients = [| 1.0; 1.0 |]; relation = Simplex.Eq; rhs = 2.0 };
        ];
    }
  in
  let objective_value, _ = solve_exn problem in
  check_float "objective" 2.0 objective_value

let test_simplex_width_mismatch () =
  let problem =
    {
      Simplex.objective = [| 1.0; 2.0 |];
      constraints =
        [ { Simplex.coefficients = [| 1.0 |]; relation = Simplex.Le; rhs = 1.0 } ];
    }
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Simplex.solve: coefficient width mismatch") (fun () ->
      ignore (Simplex.solve problem))

let test_simplex_many_variables () =
  (* min sum x_i s.t. sum x_i >= 1 over 500 variables: objective 1. *)
  let n = 500 in
  let problem =
    {
      Simplex.objective = Array.make n 1.0;
      constraints =
        [ { Simplex.coefficients = Array.make n 1.0; relation = Simplex.Ge; rhs = 1.0 } ];
    }
  in
  let objective_value, _ = solve_exn problem in
  check_float "objective" 1.0 objective_value

let test_simplex_beale_cycling () =
  (* Beale's classic cycling example: pure Dantzig pricing cycles forever
     on this LP; the stall-triggered Bland switch (and, as a backstop, the
     absolute iteration cap) must terminate it at the true optimum. *)
  let problem =
    {
      Simplex.objective = [| -0.75; 150.0; -0.02; 6.0 |];
      constraints =
        [
          {
            Simplex.coefficients = [| 0.25; -60.0; -0.04; 9.0 |];
            relation = Simplex.Le;
            rhs = 0.0;
          };
          {
            Simplex.coefficients = [| 0.5; -90.0; -0.02; 3.0 |];
            relation = Simplex.Le;
            rhs = 0.0;
          };
          {
            Simplex.coefficients = [| 0.0; 0.0; 1.0; 0.0 |];
            relation = Simplex.Le;
            rhs = 1.0;
          };
        ];
    }
  in
  let objective_value, _ = solve_exn problem in
  check_float "objective" (-0.05) objective_value

let test_simplex_iteration_cap () =
  (* With a one-pivot budget the solver must give up cleanly, not spin. *)
  let problem =
    {
      Simplex.objective = [| -1.0; -1.0 |];
      constraints =
        [
          { Simplex.coefficients = [| 1.0; 2.0 |]; relation = Simplex.Le; rhs = 4.0 };
          { Simplex.coefficients = [| 3.0; 1.0 |]; relation = Simplex.Le; rhs = 6.0 };
        ];
    }
  in
  (match Simplex.solve ~max_iterations:1 problem with
  | Simplex.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed under a 1-iteration cap");
  (* The same problem solves fine with the default budget. *)
  let objective_value, _ = solve_exn problem in
  check_float "objective" (-2.8) objective_value

let test_simplex_non_finite_inputs () =
  let mk rhs coef =
    {
      Simplex.objective = [| 1.0 |];
      constraints =
        [ { Simplex.coefficients = [| coef |]; relation = Simplex.Le; rhs } ];
    }
  in
  List.iter
    (fun problem ->
      match Simplex.solve problem with
      | Simplex.Failed _ -> ()
      | _ -> Alcotest.fail "expected Failed on non-finite input")
    [ mk Float.nan 1.0; mk 1.0 Float.nan; mk Float.infinity 1.0 ]

(* ------------------------------------------------------------------ *)
(* Brute-force cross-check on random small LPs                         *)
(* ------------------------------------------------------------------ *)

(* For 2-variable LPs with <= constraints and bounded feasible region, the
   optimum lies at a vertex; enumerate all candidate vertices (constraint
   intersections and axis intercepts) and compare. *)
let brute_force_2var objective constraints =
  let feasible (x, y) =
    x >= -1e-9 && y >= -1e-9
    && List.for_all
         (fun { Simplex.coefficients = c; rhs; _ } ->
           (c.(0) *. x) +. (c.(1) *. y) <= rhs +. 1e-9)
         constraints
  in
  let lines =
    (* each constraint as a line, plus the two axes *)
    ([| 1.0; 0.0 |], 0.0) :: ([| 0.0; 1.0 |], 0.0)
    :: List.map (fun { Simplex.coefficients = c; rhs; _ } -> (c, rhs)) constraints
  in
  let intersections = ref [] in
  List.iteri
    (fun i (a, b1) ->
      List.iteri
        (fun j (c, b2) ->
          if i < j then begin
            let det = (a.(0) *. c.(1)) -. (a.(1) *. c.(0)) in
            if Float.abs det > 1e-9 then begin
              let x = ((b1 *. c.(1)) -. (a.(1) *. b2)) /. det in
              let y = ((a.(0) *. b2) -. (b1 *. c.(0))) /. det in
              intersections := (x, y) :: !intersections
            end
          end)
        lines)
    lines;
  let best = ref Float.infinity in
  List.iter
    (fun (x, y) ->
      if feasible (x, y) then begin
        let v = (objective.(0) *. x) +. (objective.(1) *. y) in
        if v < !best then best := v
      end)
    !intersections;
  !best

let prop_simplex_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let coef = float_range 0.1 5.0 in
      let constraint_gen =
        map2
          (fun a b -> ((a, b), float_of_int 10))
          coef coef
      in
      pair (pair coef coef) (list_size (int_range 1 4) constraint_gen))
  in
  QCheck.Test.make ~count:100 ~name:"simplex matches 2-var brute force"
    (QCheck.make gen)
    (fun ((ox, oy), raw_constraints) ->
      (* Positive coefficients and RHS 10 guarantee a bounded, nonempty
         feasible region in the first quadrant. *)
      let constraints =
        List.map
          (fun ((a, b), rhs) ->
            { Simplex.coefficients = [| a; b |]; relation = Simplex.Le; rhs })
          raw_constraints
      in
      (* minimise -(ox x + oy y): maximisation, bounded by constraints *)
      let objective = [| -.ox; -.oy |] in
      match Simplex.solve { Simplex.objective; constraints } with
      | Simplex.Optimal { objective_value; _ } ->
          let expected = brute_force_2var objective constraints in
          Float.abs (objective_value -. expected)
          <= 1e-6 *. Float.max 1.0 (Float.abs expected)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* L1 fitting                                                          *)
(* ------------------------------------------------------------------ *)

let test_l1_exact_recovery () =
  (* Design is the identity: fitting should reproduce the target exactly
     when the mass constraint allows it. *)
  let spec =
    {
      L1_fit.design = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |];
      target = [| 2.0; 3.0 |];
      mass_coefficients = [| 1.0; 1.0 |];
      mass = 5.0;
    }
  in
  match L1_fit.fit spec with
  | Error e -> Alcotest.failf "unexpected error: %s" (L1_fit.error_to_string e)
  | Ok { weights; residual } ->
      check_float "residual" 0.0 residual;
      check_float "w0" 2.0 weights.(0);
      check_float "w1" 3.0 weights.(1)

let test_l1_constrained_tradeoff () =
  (* Identity design but mass forces total 4 while target sums to 5:
     optimal residual is 1 (shave one unit off either coordinate). *)
  let spec =
    {
      L1_fit.design = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |];
      target = [| 2.0; 3.0 |];
      mass_coefficients = [| 1.0; 1.0 |];
      mass = 4.0;
    }
  in
  match L1_fit.fit spec with
  | Error e -> Alcotest.failf "unexpected error: %s" (L1_fit.error_to_string e)
  | Ok { weights; residual } ->
      check_float "residual" 1.0 residual;
      check_float "mass respected" 4.0 (weights.(0) +. weights.(1))

let test_l1_nonnegative_weights () =
  let spec =
    {
      L1_fit.design = [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |];
      target = [| -5.0; -5.0 |];
      mass_coefficients = [| 1.0; 1.0 |];
      mass = 1.0;
    }
  in
  match L1_fit.fit spec with
  | Error e -> Alcotest.failf "unexpected error: %s" (L1_fit.error_to_string e)
  | Ok { weights; _ } ->
      Array.iter
        (fun w ->
          if w < -1e-9 then Alcotest.failf "negative weight %f" w)
        weights

let test_l1_infeasible_mass () =
  (* All mass coefficients zero but mass 1: infeasible. *)
  let spec =
    {
      L1_fit.design = [| [| 1.0 |] |];
      target = [| 1.0 |];
      mass_coefficients = [| 0.0 |];
      mass = 1.0;
    }
  in
  match L1_fit.fit spec with
  | Error L1_fit.Infeasible -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (L1_fit.error_to_string e)
  | Ok _ -> Alcotest.fail "expected infeasible"

let prop_l1_residual_not_worse_than_any_feasible_point =
  (* The optimal residual must be <= the residual of the specific feasible
     point that puts all mass on one grid point. *)
  QCheck.Test.make ~count:60 ~name:"L1 optimum beats single-point solutions"
    QCheck.(pair (float_range 0.5 3.0) (float_range 0.5 3.0))
    (fun (t1, t2) ->
      let spec =
        {
          L1_fit.design = [| [| 1.0; 0.5 |]; [| 0.25; 1.0 |] |];
          target = [| t1; t2 |];
          mass_coefficients = [| 0.5; 0.5 |];
          mass = 1.0;
        }
      in
      match L1_fit.fit spec with
      | Error _ -> false
      | Ok { residual; _ } ->
          (* all mass on grid point 0: r = (2, 0) *)
          let single0 =
            Float.abs (t1 -. 2.0) +. Float.abs (t2 -. 0.5)
          in
          let single1 = Float.abs (t1 -. 1.0) +. Float.abs (t2 -. 2.0) in
          residual <= Float.min single0 single1 +. 1e-6)

let () =
  Alcotest.run "repro_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic <= LP" `Quick test_simplex_basic_le;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case ">= constraint" `Quick test_simplex_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate vertex" `Quick test_simplex_degenerate;
          Alcotest.test_case "redundant equality" `Quick test_simplex_redundant_equality;
          Alcotest.test_case "width mismatch" `Quick test_simplex_width_mismatch;
          Alcotest.test_case "many variables" `Quick test_simplex_many_variables;
          Alcotest.test_case "Beale cycling terminates" `Quick
            test_simplex_beale_cycling;
          Alcotest.test_case "iteration cap" `Quick test_simplex_iteration_cap;
          Alcotest.test_case "non-finite inputs" `Quick
            test_simplex_non_finite_inputs;
        ] );
      ( "l1_fit",
        [
          Alcotest.test_case "exact recovery" `Quick test_l1_exact_recovery;
          Alcotest.test_case "constrained tradeoff" `Quick test_l1_constrained_tradeoff;
          Alcotest.test_case "nonnegative weights" `Quick test_l1_nonnegative_weights;
          Alcotest.test_case "infeasible mass" `Quick test_l1_infeasible_mass;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplex_matches_brute_force;
            prop_l1_residual_not_worse_than_any_feasible_point;
          ] );
    ]
