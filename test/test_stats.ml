(* Tests for fingerprints and the q-error metric. *)

open Repro_stats

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_int_counts () =
  (* counts 1,1,2,3,3,3 -> F1=2, F2=1, F3=3? no: counts are per-value
     multiplicities; [1;1;2;3] means two values appear once, one twice,
     one three times. *)
  let fp = Fingerprint.of_int_counts (List.to_seq [ 1; 1; 2; 3 ]) in
  check_float "F1" 2.0 (Fingerprint.get fp 1);
  check_float "F2" 1.0 (Fingerprint.get fp 2);
  check_float "F3" 1.0 (Fingerprint.get fp 3);
  check_float "F4 absent" 0.0 (Fingerprint.get fp 4);
  Alcotest.(check int) "max index" 3 (Fingerprint.max_index fp)

let test_fingerprint_ignores_nonpositive () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 0; -3; 2 ]) in
  check_float "only positive" 1.0 (Fingerprint.distinct_values fp);
  check_float "sample size" 2.0 (Fingerprint.sample_size fp)

let test_fingerprint_sample_size () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 1; 2; 3 ]) in
  check_float "n = sum i*F_i" 6.0 (Fingerprint.sample_size fp);
  check_float "distinct" 3.0 (Fingerprint.distinct_values fp)

let test_fingerprint_fractional_split () =
  (* count 2.25 contributes 0.75 to F2 and 0.25 to F3 *)
  let fp = Fingerprint.of_float_counts (List.to_seq [ 2.25 ]) in
  check_float "F2" 0.75 (Fingerprint.get fp 2);
  check_float "F3" 0.25 (Fingerprint.get fp 3);
  (* mass-preserving: 2*0.75 + 3*0.25 = 2.25 *)
  check_float "expected size preserved" 2.25 (Fingerprint.sample_size fp)

let test_fingerprint_fractional_integer_count () =
  let fp = Fingerprint.of_float_counts (List.to_seq [ 3.0 ]) in
  check_float "whole mass in F3" 1.0 (Fingerprint.get fp 3);
  check_float "no F4 leakage" 0.0 (Fingerprint.get fp 4)

let test_fingerprint_subunit_count () =
  (* count 0.4 -> 0.4 of a value at F1, 0.6 "below one occurrence" dropped
     (index 0 is not a fingerprint entry) *)
  let fp = Fingerprint.of_float_counts (List.to_seq [ 0.4 ]) in
  check_float "F1 partial" 0.4 (Fingerprint.get fp 1);
  check_float "distinct mass" 0.4 (Fingerprint.distinct_values fp)

let test_fingerprint_to_alist_sorted () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 5; 1; 3; 1 ]) in
  let keys = List.map fst (Fingerprint.to_alist fp) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] keys

let test_fingerprint_empty () =
  check_float "empty size" 0.0 (Fingerprint.sample_size Fingerprint.empty);
  Alcotest.(check int) "empty max" 0 (Fingerprint.max_index Fingerprint.empty)

(* ------------------------------------------------------------------ *)
(* Qerror                                                              *)
(* ------------------------------------------------------------------ *)

let test_qerror_basic () =
  check_float "exact" 1.0 (Qerror.compute ~truth:10.0 ~estimate:10.0);
  check_float "2x over" 2.0 (Qerror.compute ~truth:10.0 ~estimate:20.0);
  check_float "2x under" 2.0 (Qerror.compute ~truth:10.0 ~estimate:5.0)

let test_qerror_zero_cases () =
  check_float "both zero" 1.0 (Qerror.compute ~truth:0.0 ~estimate:0.0);
  check_float "estimate zero" Float.infinity (Qerror.compute ~truth:5.0 ~estimate:0.0);
  check_float "truth zero" Float.infinity (Qerror.compute ~truth:0.0 ~estimate:5.0)

let test_qerror_negative_estimate_clamped () =
  check_float "negative treated as 0" Float.infinity
    (Qerror.compute ~truth:5.0 ~estimate:(-3.0))

let test_qerror_nan_estimate () =
  (* a NaN estimate is garbage, not a zero/nonzero mismatch: it must stay
     NaN so summaries can count it separately from honest inf failures *)
  Alcotest.(check bool) "nan stays nan" true
    (Float.is_nan (Qerror.compute ~truth:5.0 ~estimate:Float.nan));
  Alcotest.(check bool) "nan is garbage" true (Qerror.is_garbage Float.nan);
  Alcotest.(check bool) "inf is not garbage" false
    (Qerror.is_garbage Float.infinity);
  Alcotest.(check bool) "inf is zero-mismatch" true
    (Qerror.is_zero_mismatch Float.infinity);
  Alcotest.(check bool) "nan is not zero-mismatch" false
    (Qerror.is_zero_mismatch Float.nan)

let test_qerror_boundaries () =
  (* the both-zero convention (a correct "no result" estimate is perfect,
     q = 1) must survive sign and magnitude edge cases *)
  check_float "negative zero estimate, zero truth" 1.0
    (Qerror.compute ~truth:0.0 ~estimate:(-0.0));
  check_float "negative estimate clamps into the both-zero case" 1.0
    (Qerror.compute ~truth:0.0 ~estimate:(-7.0));
  check_float "denormal exact match" 1.0
    (Qerror.compute ~truth:Float.min_float ~estimate:Float.min_float);
  check_float "infinite estimate is a failure" Float.infinity
    (Qerror.compute ~truth:5.0 ~estimate:Float.infinity);
  Alcotest.check_raises "negative truth rejected"
    (Invalid_argument "Qerror.compute: negative truth") (fun () ->
      ignore (Qerror.compute ~truth:(-1.0) ~estimate:2.0))

let test_qerror_failure_predicate () =
  Alcotest.(check bool) "inf" true (Qerror.is_failure Float.infinity);
  Alcotest.(check bool) "nan" true (Qerror.is_failure Float.nan);
  Alcotest.(check bool) "finite" false (Qerror.is_failure 3.0)

let test_qerror_to_string () =
  Alcotest.(check string) "format" "2.50" (Qerror.to_string 2.5);
  Alcotest.(check string) "inf" "inf" (Qerror.to_string Float.infinity);
  Alcotest.(check string) "nan" "nan" (Qerror.to_string Float.nan)

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

module Prng = Repro_util.Prng

let test_bootstrap_contains_point () =
  let prng = Prng.create 3 in
  let runs = Array.init 50 (fun i -> float_of_int (i mod 10)) in
  let ci = Bootstrap.median_interval prng runs in
  Alcotest.(check bool) "lower <= point" true (ci.Bootstrap.lower <= ci.Bootstrap.point);
  Alcotest.(check bool) "point <= upper" true (ci.Bootstrap.point <= ci.Bootstrap.upper)

let test_bootstrap_degenerate_data () =
  let prng = Prng.create 5 in
  let runs = Array.make 20 7.0 in
  let ci = Bootstrap.median_interval prng runs in
  check_float "tight lower" 7.0 ci.Bootstrap.lower;
  check_float "tight upper" 7.0 ci.Bootstrap.upper

let test_bootstrap_wider_at_higher_level () =
  let prng = Prng.create 7 in
  let runs = Array.init 60 (fun i -> float_of_int ((i * 37) mod 100)) in
  let narrow = Bootstrap.median_interval ~level:0.5 (Prng.copy prng) runs in
  let wide = Bootstrap.median_interval ~level:0.99 (Prng.copy prng) runs in
  Alcotest.(check bool) "99% at least as wide as 50%" true
    (wide.Bootstrap.upper -. wide.Bootstrap.lower
    >= narrow.Bootstrap.upper -. narrow.Bootstrap.lower)

let test_bootstrap_validation () =
  let prng = Prng.create 9 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Bootstrap.confidence_interval: empty input") (fun () ->
      ignore (Bootstrap.median_interval prng [||]));
  Alcotest.check_raises "bad level"
    (Invalid_argument "Bootstrap.confidence_interval: level must be in (0, 1)")
    (fun () -> ignore (Bootstrap.median_interval ~level:1.5 prng [| 1.0 |]))

let test_bootstrap_custom_statistic () =
  let prng = Prng.create 11 in
  let runs = Array.init 30 (fun i -> float_of_int i) in
  let ci =
    Bootstrap.confidence_interval ~statistic:Repro_util.Summary.mean prng runs
  in
  check_float "point is the mean" 14.5 ci.Bootstrap.point

let test_bootstrap_infinite_mass () =
  (* q-error arrays from failed runs carry inf entries; the interval must
     report them honestly (upper = inf), never collapse to NaN *)
  let prng = Prng.create 13 in
  let runs = [| 1.0; 2.0; Float.infinity; Float.infinity; Float.infinity |] in
  let ci = Bootstrap.median_interval prng runs in
  check_float "upper honest inf" Float.infinity ci.Bootstrap.upper;
  Alcotest.(check bool) "lower not nan" false (Float.is_nan ci.Bootstrap.lower);
  Alcotest.(check bool) "point not nan" false (Float.is_nan ci.Bootstrap.point)

(* ------------------------------------------------------------------ *)
(* Variance                                                            *)
(* ------------------------------------------------------------------ *)

let test_normal_quantile_values () =
  (* reference values of the standard normal inverse CDF *)
  let q = Variance.normal_quantile in
  check_float "median" 0.0 (q 0.5);
  Alcotest.(check (float 1e-6)) "97.5%" 1.959964 (q 0.975);
  Alcotest.(check (float 1e-6)) "2.5%" (-1.959964) (q 0.025);
  Alcotest.(check (float 1e-6)) "99.9% tail" 3.090232 (q 0.999);
  Alcotest.(check (float 1e-6)) "z at 99%" 2.575829 (Variance.z_of_level 0.99)

let test_scaling_term_independent_case () =
  (* with full rates (p = q = u = 1) the sample is the population and the
     variance term must vanish exactly *)
  check_float "no sampling, no variance" 0.0
    (Variance.scaling_term ~p:1.0 ~q:1.0 ~u:1.0 ~a:4.0 ~b:3.0)

let test_scaling_term_positive_under_sampling () =
  let v = Variance.scaling_term ~p:0.5 ~q:0.5 ~u:0.5 ~a:4.0 ~b:3.0 in
  Alcotest.(check bool) "positive under sampling" true (v > 0.0);
  Alcotest.check_raises "rates must be positive"
    (Invalid_argument "Variance.scaling_term: probabilities must be positive")
    (fun () -> ignore (Variance.scaling_term ~p:0.0 ~q:1.0 ~u:1.0 ~a:1.0 ~b:1.0))

let test_of_terms_clamps () =
  (* float rounding can leave tiny negative sums; the total clamps at 0 *)
  check_float "clamped" 0.0 (Variance.of_terms [ 1e-12; -2e-12 ]);
  check_float "sums" 3.0 (Variance.of_terms [ 1.0; 2.0 ])

let test_normal_interval () =
  let iv = Variance.normal_interval ~point:100.0 ~variance:25.0 () in
  Alcotest.(check (float 1e-4)) "upper" (100.0 +. (1.959964 *. 5.0))
    iv.Bootstrap.upper;
  Alcotest.(check (float 1e-4)) "lower" (100.0 -. (1.959964 *. 5.0))
    iv.Bootstrap.lower;
  (* estimates are nonnegative: the lower endpoint clamps at 0 *)
  let near_zero = Variance.normal_interval ~point:1.0 ~variance:25.0 () in
  check_float "lower clamped at 0" 0.0 near_zero.Bootstrap.lower;
  (* a NaN variance yields a NaN interval, never a fake-finite one *)
  let bad = Variance.normal_interval ~point:1.0 ~variance:Float.nan () in
  Alcotest.(check bool) "nan variance, nan interval" true
    (Float.is_nan bad.Bootstrap.lower && Float.is_nan bad.Bootstrap.upper)

let test_mean_interval_agrees_with_bootstrap () =
  (* on a fixed well-behaved grid the CLT interval and the bootstrap
     interval on the mean must roughly agree *)
  let xs = Array.init 200 (fun i -> float_of_int ((i * 61) mod 97)) in
  let clt = Variance.mean_interval xs in
  let boot =
    Bootstrap.confidence_interval ~statistic:Repro_util.Summary.mean
      (Prng.create 17) xs
  in
  check_float "same point" (Repro_util.Summary.mean xs) clt.Bootstrap.point;
  let clt_w = clt.Bootstrap.upper -. clt.Bootstrap.lower in
  let boot_w = boot.Bootstrap.upper -. boot.Bootstrap.lower in
  Alcotest.(check bool) "widths within 25%" true
    (Float.abs (clt_w -. boot_w) /. boot_w < 0.25);
  Alcotest.check_raises "needs two points"
    (Invalid_argument "Variance.mean_interval: need at least two runs")
    (fun () -> ignore (Variance.mean_interval [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_qerror_at_least_one =
  QCheck.Test.make ~count:500 ~name:"q-error >= 1"
    QCheck.(pair (float_range 0.001 1e6) (float_range 0.0 1e6))
    (fun (truth, estimate) -> Qerror.compute ~truth ~estimate >= 1.0)

let prop_qerror_symmetric =
  QCheck.Test.make ~count:500 ~name:"q-error symmetric in truth/estimate"
    QCheck.(pair (float_range 0.001 1e6) (float_range 0.001 1e6))
    (fun (x, y) ->
      Repro_util.Math_ex.feq ~eps:1e-9
        (Qerror.compute ~truth:x ~estimate:y)
        (Qerror.compute ~truth:y ~estimate:x))

let prop_fingerprint_mass_conserved =
  QCheck.Test.make ~count:300 ~name:"fractional fingerprint preserves sample size"
    QCheck.(list_of_size Gen.(int_range 0 30) (float_range 0.0 20.0))
    (fun counts ->
      let fp = Fingerprint.of_float_counts (List.to_seq counts) in
      let expected =
        List.fold_left
          (fun acc c ->
            (* counts below 1 lose their floor mass to the nonexistent
               F0 bin; model that in the oracle *)
            if c <= 0.0 then acc
            else if c < 1.0 then acc +. (c -. Float.floor c) *. 1.0
            else acc +. c)
          0.0 counts
      in
      Float.abs (Fingerprint.sample_size fp -. expected) < 1e-6)

let () =
  Alcotest.run "repro_stats"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "int counts" `Quick test_fingerprint_int_counts;
          Alcotest.test_case "ignores nonpositive" `Quick test_fingerprint_ignores_nonpositive;
          Alcotest.test_case "sample size" `Quick test_fingerprint_sample_size;
          Alcotest.test_case "fractional split" `Quick test_fingerprint_fractional_split;
          Alcotest.test_case "fractional integer" `Quick
            test_fingerprint_fractional_integer_count;
          Alcotest.test_case "subunit count" `Quick test_fingerprint_subunit_count;
          Alcotest.test_case "alist sorted" `Quick test_fingerprint_to_alist_sorted;
          Alcotest.test_case "empty" `Quick test_fingerprint_empty;
        ] );
      ( "qerror",
        [
          Alcotest.test_case "basic" `Quick test_qerror_basic;
          Alcotest.test_case "zero cases" `Quick test_qerror_zero_cases;
          Alcotest.test_case "negative clamped" `Quick test_qerror_negative_estimate_clamped;
          Alcotest.test_case "nan" `Quick test_qerror_nan_estimate;
          Alcotest.test_case "boundaries" `Quick test_qerror_boundaries;
          Alcotest.test_case "failure predicate" `Quick test_qerror_failure_predicate;
          Alcotest.test_case "to_string" `Quick test_qerror_to_string;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "contains point" `Quick test_bootstrap_contains_point;
          Alcotest.test_case "degenerate" `Quick test_bootstrap_degenerate_data;
          Alcotest.test_case "level widens" `Quick test_bootstrap_wider_at_higher_level;
          Alcotest.test_case "validation" `Quick test_bootstrap_validation;
          Alcotest.test_case "custom statistic" `Quick test_bootstrap_custom_statistic;
          Alcotest.test_case "infinite mass" `Quick test_bootstrap_infinite_mass;
        ] );
      ( "variance",
        [
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile_values;
          Alcotest.test_case "independent case" `Quick test_scaling_term_independent_case;
          Alcotest.test_case "positive under sampling" `Quick
            test_scaling_term_positive_under_sampling;
          Alcotest.test_case "of_terms clamps" `Quick test_of_terms_clamps;
          Alcotest.test_case "normal interval" `Quick test_normal_interval;
          Alcotest.test_case "mean interval vs bootstrap" `Quick
            test_mean_interval_agrees_with_bootstrap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_qerror_at_least_one;
            prop_qerror_symmetric;
            prop_fingerprint_mass_conserved;
          ] );
    ]
