(* Tests for fingerprints and the q-error metric. *)

open Repro_stats

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_int_counts () =
  (* counts 1,1,2,3,3,3 -> F1=2, F2=1, F3=3? no: counts are per-value
     multiplicities; [1;1;2;3] means two values appear once, one twice,
     one three times. *)
  let fp = Fingerprint.of_int_counts (List.to_seq [ 1; 1; 2; 3 ]) in
  check_float "F1" 2.0 (Fingerprint.get fp 1);
  check_float "F2" 1.0 (Fingerprint.get fp 2);
  check_float "F3" 1.0 (Fingerprint.get fp 3);
  check_float "F4 absent" 0.0 (Fingerprint.get fp 4);
  Alcotest.(check int) "max index" 3 (Fingerprint.max_index fp)

let test_fingerprint_ignores_nonpositive () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 0; -3; 2 ]) in
  check_float "only positive" 1.0 (Fingerprint.distinct_values fp);
  check_float "sample size" 2.0 (Fingerprint.sample_size fp)

let test_fingerprint_sample_size () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 1; 2; 3 ]) in
  check_float "n = sum i*F_i" 6.0 (Fingerprint.sample_size fp);
  check_float "distinct" 3.0 (Fingerprint.distinct_values fp)

let test_fingerprint_fractional_split () =
  (* count 2.25 contributes 0.75 to F2 and 0.25 to F3 *)
  let fp = Fingerprint.of_float_counts (List.to_seq [ 2.25 ]) in
  check_float "F2" 0.75 (Fingerprint.get fp 2);
  check_float "F3" 0.25 (Fingerprint.get fp 3);
  (* mass-preserving: 2*0.75 + 3*0.25 = 2.25 *)
  check_float "expected size preserved" 2.25 (Fingerprint.sample_size fp)

let test_fingerprint_fractional_integer_count () =
  let fp = Fingerprint.of_float_counts (List.to_seq [ 3.0 ]) in
  check_float "whole mass in F3" 1.0 (Fingerprint.get fp 3);
  check_float "no F4 leakage" 0.0 (Fingerprint.get fp 4)

let test_fingerprint_subunit_count () =
  (* count 0.4 -> 0.4 of a value at F1, 0.6 "below one occurrence" dropped
     (index 0 is not a fingerprint entry) *)
  let fp = Fingerprint.of_float_counts (List.to_seq [ 0.4 ]) in
  check_float "F1 partial" 0.4 (Fingerprint.get fp 1);
  check_float "distinct mass" 0.4 (Fingerprint.distinct_values fp)

let test_fingerprint_to_alist_sorted () =
  let fp = Fingerprint.of_int_counts (List.to_seq [ 5; 1; 3; 1 ]) in
  let keys = List.map fst (Fingerprint.to_alist fp) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] keys

let test_fingerprint_empty () =
  check_float "empty size" 0.0 (Fingerprint.sample_size Fingerprint.empty);
  Alcotest.(check int) "empty max" 0 (Fingerprint.max_index Fingerprint.empty)

(* ------------------------------------------------------------------ *)
(* Qerror                                                              *)
(* ------------------------------------------------------------------ *)

let test_qerror_basic () =
  check_float "exact" 1.0 (Qerror.compute ~truth:10.0 ~estimate:10.0);
  check_float "2x over" 2.0 (Qerror.compute ~truth:10.0 ~estimate:20.0);
  check_float "2x under" 2.0 (Qerror.compute ~truth:10.0 ~estimate:5.0)

let test_qerror_zero_cases () =
  check_float "both zero" 1.0 (Qerror.compute ~truth:0.0 ~estimate:0.0);
  check_float "estimate zero" Float.infinity (Qerror.compute ~truth:5.0 ~estimate:0.0);
  check_float "truth zero" Float.infinity (Qerror.compute ~truth:0.0 ~estimate:5.0)

let test_qerror_negative_estimate_clamped () =
  check_float "negative treated as 0" Float.infinity
    (Qerror.compute ~truth:5.0 ~estimate:(-3.0))

let test_qerror_nan_estimate () =
  check_float "nan is failure" Float.infinity
    (Qerror.compute ~truth:5.0 ~estimate:Float.nan)

let test_qerror_boundaries () =
  (* the both-zero convention (a correct "no result" estimate is perfect,
     q = 1) must survive sign and magnitude edge cases *)
  check_float "negative zero estimate, zero truth" 1.0
    (Qerror.compute ~truth:0.0 ~estimate:(-0.0));
  check_float "negative estimate clamps into the both-zero case" 1.0
    (Qerror.compute ~truth:0.0 ~estimate:(-7.0));
  check_float "denormal exact match" 1.0
    (Qerror.compute ~truth:Float.min_float ~estimate:Float.min_float);
  check_float "infinite estimate is a failure" Float.infinity
    (Qerror.compute ~truth:5.0 ~estimate:Float.infinity);
  Alcotest.check_raises "negative truth rejected"
    (Invalid_argument "Qerror.compute: negative truth") (fun () ->
      ignore (Qerror.compute ~truth:(-1.0) ~estimate:2.0))

let test_qerror_failure_predicate () =
  Alcotest.(check bool) "inf" true (Qerror.is_failure Float.infinity);
  Alcotest.(check bool) "finite" false (Qerror.is_failure 3.0)

let test_qerror_to_string () =
  Alcotest.(check string) "format" "2.50" (Qerror.to_string 2.5);
  Alcotest.(check string) "inf" "inf" (Qerror.to_string Float.infinity)

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

module Prng = Repro_util.Prng

let test_bootstrap_contains_point () =
  let prng = Prng.create 3 in
  let runs = Array.init 50 (fun i -> float_of_int (i mod 10)) in
  let ci = Bootstrap.median_interval prng runs in
  Alcotest.(check bool) "lower <= point" true (ci.Bootstrap.lower <= ci.Bootstrap.point);
  Alcotest.(check bool) "point <= upper" true (ci.Bootstrap.point <= ci.Bootstrap.upper)

let test_bootstrap_degenerate_data () =
  let prng = Prng.create 5 in
  let runs = Array.make 20 7.0 in
  let ci = Bootstrap.median_interval prng runs in
  check_float "tight lower" 7.0 ci.Bootstrap.lower;
  check_float "tight upper" 7.0 ci.Bootstrap.upper

let test_bootstrap_wider_at_higher_level () =
  let prng = Prng.create 7 in
  let runs = Array.init 60 (fun i -> float_of_int ((i * 37) mod 100)) in
  let narrow = Bootstrap.median_interval ~level:0.5 (Prng.copy prng) runs in
  let wide = Bootstrap.median_interval ~level:0.99 (Prng.copy prng) runs in
  Alcotest.(check bool) "99% at least as wide as 50%" true
    (wide.Bootstrap.upper -. wide.Bootstrap.lower
    >= narrow.Bootstrap.upper -. narrow.Bootstrap.lower)

let test_bootstrap_validation () =
  let prng = Prng.create 9 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Bootstrap.confidence_interval: empty input") (fun () ->
      ignore (Bootstrap.median_interval prng [||]));
  Alcotest.check_raises "bad level"
    (Invalid_argument "Bootstrap.confidence_interval: level must be in (0, 1)")
    (fun () -> ignore (Bootstrap.median_interval ~level:1.5 prng [| 1.0 |]))

let test_bootstrap_custom_statistic () =
  let prng = Prng.create 11 in
  let runs = Array.init 30 (fun i -> float_of_int i) in
  let ci =
    Bootstrap.confidence_interval ~statistic:Repro_util.Summary.mean prng runs
  in
  check_float "point is the mean" 14.5 ci.Bootstrap.point

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_qerror_at_least_one =
  QCheck.Test.make ~count:500 ~name:"q-error >= 1"
    QCheck.(pair (float_range 0.001 1e6) (float_range 0.0 1e6))
    (fun (truth, estimate) -> Qerror.compute ~truth ~estimate >= 1.0)

let prop_qerror_symmetric =
  QCheck.Test.make ~count:500 ~name:"q-error symmetric in truth/estimate"
    QCheck.(pair (float_range 0.001 1e6) (float_range 0.001 1e6))
    (fun (x, y) ->
      Repro_util.Math_ex.feq ~eps:1e-9
        (Qerror.compute ~truth:x ~estimate:y)
        (Qerror.compute ~truth:y ~estimate:x))

let prop_fingerprint_mass_conserved =
  QCheck.Test.make ~count:300 ~name:"fractional fingerprint preserves sample size"
    QCheck.(list_of_size Gen.(int_range 0 30) (float_range 0.0 20.0))
    (fun counts ->
      let fp = Fingerprint.of_float_counts (List.to_seq counts) in
      let expected =
        List.fold_left
          (fun acc c ->
            (* counts below 1 lose their floor mass to the nonexistent
               F0 bin; model that in the oracle *)
            if c <= 0.0 then acc
            else if c < 1.0 then acc +. (c -. Float.floor c) *. 1.0
            else acc +. c)
          0.0 counts
      in
      Float.abs (Fingerprint.sample_size fp -. expected) < 1e-6)

let () =
  Alcotest.run "repro_stats"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "int counts" `Quick test_fingerprint_int_counts;
          Alcotest.test_case "ignores nonpositive" `Quick test_fingerprint_ignores_nonpositive;
          Alcotest.test_case "sample size" `Quick test_fingerprint_sample_size;
          Alcotest.test_case "fractional split" `Quick test_fingerprint_fractional_split;
          Alcotest.test_case "fractional integer" `Quick
            test_fingerprint_fractional_integer_count;
          Alcotest.test_case "subunit count" `Quick test_fingerprint_subunit_count;
          Alcotest.test_case "alist sorted" `Quick test_fingerprint_to_alist_sorted;
          Alcotest.test_case "empty" `Quick test_fingerprint_empty;
        ] );
      ( "qerror",
        [
          Alcotest.test_case "basic" `Quick test_qerror_basic;
          Alcotest.test_case "zero cases" `Quick test_qerror_zero_cases;
          Alcotest.test_case "negative clamped" `Quick test_qerror_negative_estimate_clamped;
          Alcotest.test_case "nan" `Quick test_qerror_nan_estimate;
          Alcotest.test_case "boundaries" `Quick test_qerror_boundaries;
          Alcotest.test_case "failure predicate" `Quick test_qerror_failure_predicate;
          Alcotest.test_case "to_string" `Quick test_qerror_to_string;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "contains point" `Quick test_bootstrap_contains_point;
          Alcotest.test_case "degenerate" `Quick test_bootstrap_degenerate_data;
          Alcotest.test_case "level widens" `Quick test_bootstrap_wider_at_higher_level;
          Alcotest.test_case "validation" `Quick test_bootstrap_validation;
          Alcotest.test_case "custom statistic" `Quick test_bootstrap_custom_statistic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_qerror_at_least_one;
            prop_qerror_symmetric;
            prop_fingerprint_mass_conserved;
          ] );
    ]
