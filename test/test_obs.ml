(* Observability layer: registry atomicity under real Pool domains,
   histogram bucket arithmetic, span nesting, JSONL round-trips, and a
   golden Prometheus snapshot. The layer's contract is "never perturbs
   results": these tests also pin the properties the bench harness relies
   on (counts exact under contention, exporters deterministic). *)

module Obs = Repro_obs.Obs
module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Rolling = Repro_obs.Rolling
module Access_log = Repro_obs.Access_log
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock

let find_point name labels snapshot =
  match
    List.find_opt (fun (n, l, _) -> n = name && l = labels) snapshot
  with
  | Some (_, _, p) -> p
  | None -> Alcotest.failf "metric %s not in snapshot" name

let counter_value name ?(labels = []) obs =
  match Obs.registry obs with
  | None -> Alcotest.fail "expected a live context"
  | Some registry -> (
      match find_point name labels (Metrics.Registry.snapshot registry) with
      | Metrics.P_counter v -> v
      | _ -> Alcotest.failf "%s is not a counter" name)

(* ---------------- atomicity under Pool.map ---------------- *)

let test_registry_atomic_under_pool () =
  let obs = Obs.create () in
  let tasks = 2000 in
  let results =
    Pool.map_array ~obs ~jobs:4
      (fun i ->
        Obs.count obs "test.counter" 1;
        Obs.count obs ~labels:[ ("worker", string_of_int (i mod 3)) ]
          "test.labelled" 1;
        Obs.observe obs "test.hist" (float_of_int (i mod 7));
        i)
      (Array.init tasks (fun i -> i))
  in
  Alcotest.(check int) "all tasks ran" tasks (Array.length results);
  Alcotest.(check int)
    "counter exact under 4 domains" tasks
    (counter_value "test.counter" obs);
  let labelled =
    List.fold_left
      (fun acc w ->
        acc
        + counter_value "test.labelled"
            ~labels:[ ("worker", string_of_int w) ]
            obs)
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "labelled counters partition the tasks" tasks labelled;
  (match Obs.registry obs with
  | None -> Alcotest.fail "live context"
  | Some registry ->
      let h = Metrics.Registry.histogram registry "test.hist" in
      Alcotest.(check int)
        "histogram count exact under 4 domains" tasks
        (Metrics.Histogram.count h);
      (* sum of 2000 values of i mod 7: 285 full cycles of 0+..+6 = 21,
         then 0+..+5 for the remaining 5 observations *)
      Alcotest.(check (float 1e-9))
        "histogram sum exact"
        ((285.0 *. 21.0) +. 10.0)
        (Metrics.Histogram.sum h));
  (* the pool's own instrumentation saw every task *)
  Alcotest.(check int)
    "pool.tasks counted every task" tasks
    (counter_value "pool.tasks" obs)

let test_gauge_cas_accumulation () =
  let registry = Metrics.Registry.create () in
  let g = Metrics.Registry.gauge registry "test.gauge" in
  let per_domain = 5000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Gauge.add g 0.25
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check (float 1e-9))
    "no lost float updates across 4 domains"
    (4.0 *. float_of_int per_domain *. 0.25)
    (Metrics.Gauge.value g)

(* ---------------- histogram buckets ---------------- *)

let test_bucket_boundaries () =
  let module H = Metrics.Histogram in
  (* every positive finite value lands strictly below its bucket's upper
     bound and at or above the previous bound *)
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "%g < upper(%d)" v i)
        true
        (v < H.bucket_upper i);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%g >= upper(%d)" v (i - 1))
          true
          (v >= H.bucket_upper (i - 1)))
    [ 1e-9; 0.001; 0.5; 0.75; 1.0; 1.5; 2.0; 1000.0; 3.0e9 ];
  (* power-of-two boundaries are exclusive: 2^k opens the next bucket *)
  Alcotest.(check (float 0.0))
    "upper bound of 1.0's bucket is 2" 2.0
    (H.bucket_upper (H.bucket_index 1.0));
  Alcotest.(check int)
    "1.0 and 1.999 share a bucket" (H.bucket_index 1.0)
    (H.bucket_index 1.999);
  Alcotest.(check bool)
    "2.0 is one bucket above 1.0" true
    (H.bucket_index 2.0 = H.bucket_index 1.0 + 1);
  (* clamping at both ends *)
  Alcotest.(check int) "zero clamps to bucket 0" 0 (H.bucket_index 0.0);
  Alcotest.(check int) "negative clamps to bucket 0" 0 (H.bucket_index (-3.0));
  Alcotest.(check int)
    "tiny underflow clamps to bucket 0" 0 (H.bucket_index 1e-300);
  Alcotest.(check int)
    "huge overflow clamps to the last bucket" (H.bucket_count - 1)
    (H.bucket_index 1e300);
  Alcotest.(check int)
    "+inf clamps to the last bucket" (H.bucket_count - 1)
    (H.bucket_index Float.infinity);
  (* NaN observations are dropped entirely *)
  let h = H.create () in
  H.observe h Float.nan;
  Alcotest.(check int) "NaN dropped" 0 (H.count h);
  H.observe h 0.75;
  H.observe h 1.5;
  Alcotest.(check int) "count after two observations" 2 (H.count h);
  Alcotest.(check (float 1e-12)) "sum after two observations" 2.25 (H.sum h);
  Alcotest.(check int)
    "0.75 landed in its bucket" 1
    (H.bucket_value h (H.bucket_index 0.75))

let test_histogram_quantile () =
  let module H = Metrics.Histogram in
  let h = H.create () in
  Alcotest.(check bool)
    "empty histogram quantile is nan" true
    (Float.is_nan (H.quantile h 0.5));
  (* four observations of 1.0 all land in the [1, 2) bucket; quantiles
     interpolate linearly within it (Prometheus histogram_quantile
     semantics: the bucket is all we know) *)
  for _ = 1 to 4 do
    H.observe h 1.0
  done;
  Alcotest.(check (float 1e-12)) "q=0 is the bucket's lower bound" 1.0
    (H.quantile h 0.0);
  Alcotest.(check (float 1e-12)) "q=0.5 is the bucket midpoint" 1.5
    (H.quantile h 0.5);
  Alcotest.(check (float 1e-12)) "q=1 is the bucket's upper bound" 2.0
    (H.quantile h 1.0);
  Alcotest.(check (float 1e-12)) "q below 0 clamps to 0" 1.0
    (H.quantile h (-3.0));
  Alcotest.(check (float 1e-12)) "q above 1 clamps to 1" 2.0 (H.quantile h 7.0);
  (* across buckets: 0.75 in [0.5, 1), 1.5 in [1, 2) *)
  let h2 = H.create () in
  H.observe h2 0.75;
  H.observe h2 1.5;
  Alcotest.(check (float 1e-12))
    "rank inside the first bucket" 0.75 (H.quantile h2 0.25);
  Alcotest.(check (float 1e-12))
    "median at the first bucket's upper bound" 1.0 (H.quantile h2 0.5);
  Alcotest.(check (float 1e-12))
    "max at the last occupied bucket's upper bound" 2.0 (H.quantile h2 1.0)

let test_histogram_quantile_clamp_bucket () =
  let module H = Metrics.Histogram in
  (* the top bucket clamps every overflow — including +inf. Interpolating
     toward its nominal upper bound (2^36) would fabricate a magnitude no
     observation ever had; quantiles landing there must return the
     bucket's lower bound, the largest value the histogram can vouch
     for. *)
  let h = H.create () in
  H.observe h 1.0;
  H.observe h Float.infinity;
  let top_lower = H.bucket_upper (H.bucket_count - 2) in
  Alcotest.(check (float 1e-12))
    "p=1 with an inf observation stays at the clamp bucket's lower bound"
    top_lower (H.quantile h 1.0);
  Alcotest.(check bool) "never infinite" true
    (Float.is_finite (H.quantile h 1.0));
  let h2 = H.create () in
  H.observe h2 Float.infinity;
  Alcotest.(check (float 1e-12))
    "all-overflow histogram: every quantile is the clamp lower bound"
    top_lower (H.quantile h2 0.5)

let test_registry_kind_mismatch () =
  let registry = Metrics.Registry.create () in
  ignore (Metrics.Registry.counter registry "test.kind" : Metrics.Counter.t);
  match Metrics.Registry.gauge registry "test.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let sink = Trace.memory () in
  let obs = Obs.create ~sink () in
  let result =
    Obs.Span.with_ obs ~name:"outer" ~attrs:[ ("k", "v") ] @@ fun () ->
    Obs.Span.with_ obs ~name:"inner" (fun () -> 17)
  in
  Alcotest.(check int) "body result passes through" 17 result;
  match Trace.spans sink with
  | [ inner; outer ] ->
      (* inner closes (and is emitted) first *)
      Alcotest.(check string) "inner name" "inner" inner.Trace.name;
      Alcotest.(check string) "outer name" "outer" outer.Trace.name;
      Alcotest.(check (option int))
        "inner's parent is outer" (Some outer.Trace.id) inner.Trace.parent;
      Alcotest.(check (option int))
        "outer is a root span" None outer.Trace.parent;
      Alcotest.(check (list (pair string string)))
        "attrs preserved"
        [ ("k", "v") ]
        outer.Trace.attrs;
      Alcotest.(check bool)
        "durations non-negative" true
        (inner.Trace.duration_s >= 0.0 && outer.Trace.duration_s >= 0.0);
      Alcotest.(check bool)
        "inner nested within outer's window" true
        (inner.Trace.start_s >= outer.Trace.start_s)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_path () =
  let sink = Trace.memory () in
  let obs = Obs.create ~sink () in
  (match
     Obs.Span.with_ obs ~name:"raiser" (fun () -> failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  match Trace.spans sink with
  | [ s ] ->
      Alcotest.(check string) "span still emitted" "raiser" s.Trace.name;
      Alcotest.(check bool)
        "error attr recorded" true
        (List.mem_assoc "error" s.Trace.attrs);
      (* the parent slot must be restored for the next span *)
      Obs.Span.with_ obs ~name:"after" (fun () -> ());
      let after = List.nth (Trace.spans sink) 1 in
      Alcotest.(check (option int))
        "parent stack unwound after raise" None after.Trace.parent
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* ---------------- JSONL round-trip ---------------- *)

let span_testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Trace.span_to_json s))
    (fun a b ->
      a.Trace.id = b.Trace.id
      && a.Trace.parent = b.Trace.parent
      && String.equal a.Trace.name b.Trace.name
      && a.Trace.attrs = b.Trace.attrs
      && a.Trace.domain = b.Trace.domain
      && Float.equal a.Trace.start_s b.Trace.start_s
      && Float.equal a.Trace.duration_s b.Trace.duration_s)

let test_jsonl_round_trip () =
  let spans =
    [
      {
        Trace.id = 0;
        parent = None;
        name = "sample.draw";
        attrs = [ ("spec", "CSDL(t,diff)"); ("quote", "a\"b\\c\nd") ];
        domain = 0;
        start_s = 1722950000.123456;
        duration_s = 0.25;
      };
      {
        Trace.id = 1;
        parent = Some 0;
        name = "estimate.run";
        attrs = [];
        domain = 3;
        start_s = 0.0;
        duration_s = 1.0 /. 3.0;
      };
    ]
  in
  List.iter
    (fun s ->
      match Trace.span_of_json (Trace.span_to_json s) with
      | Ok parsed -> Alcotest.check span_testable "round-trips" s parsed
      | Error e -> Alcotest.failf "parse failed: %s" e)
    spans;
  (* real emitted lines parse too *)
  let sink = Trace.memory () in
  let obs = Obs.create ~sink () in
  Obs.Span.with_ obs ~name:"outer" (fun () ->
      Obs.Span.with_ obs ~name:"inner" (fun () -> ()));
  List.iter
    (fun line ->
      match Trace.span_of_json line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "emitted line does not parse: %s (%s)" e line)
    (Trace.lines sink);
  match Trace.span_of_json "{\"type\":\"span\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated JSON must not parse"

(* ---------------- golden Prometheus snapshot ---------------- *)

let test_prometheus_golden () =
  let registry = Metrics.Registry.create () in
  Metrics.Counter.add
    (Metrics.Registry.counter registry ~labels:[ ("method", "get") ]
       "requests.total")
    3;
  Metrics.Gauge.set (Metrics.Registry.gauge registry "pool.util") 0.5;
  let h = Metrics.Registry.histogram registry "lat" in
  List.iter (Metrics.Histogram.observe h) [ 0.75; 1.5; 3.0 ];
  let expected =
    String.concat "\n"
      [
        "# TYPE lat histogram";
        "lat_bucket{le=\"1\"} 1";
        "lat_bucket{le=\"2\"} 2";
        "lat_bucket{le=\"4\"} 3";
        "lat_bucket{le=\"+Inf\"} 3";
        "lat_sum 5.25";
        "lat_count 3";
        "# TYPE pool_util gauge";
        "pool_util 0.5";
        "# TYPE requests_total counter";
        "requests_total{method=\"get\"} 3";
        "";
      ]
  in
  Alcotest.(check string)
    "snapshot is byte-stable" expected
    (Metrics.render_prometheus registry)

(* Label values are where hostile bytes enter the exposition format:
   query names and predicate strings carry quotes, backslashes and (via
   CSV data) even newlines. Pin the escaping byte-for-byte. *)
let test_prometheus_hostile_labels () =
  let registry = Metrics.Registry.create () in
  Metrics.Counter.add
    (Metrics.Registry.counter registry
       ~labels:[ ("q", "a\"b\\c\nd"); ("pred", "name LIKE 'The %'") ]
       "hostile.total")
    1;
  let expected =
    String.concat "\n"
      [
        "# TYPE hostile_total counter";
        "hostile_total{pred=\"name LIKE 'The %'\",q=\"a\\\"b\\\\c\\nd\"} 1";
        "";
      ]
  in
  Alcotest.(check string)
    "hostile label values escape to \\\" \\\\ \\n" expected
    (Metrics.render_prometheus registry)

(* ---------------- idempotent close ---------------- *)

(* Closing twice must not append the metrics dump twice — the memory sink
   has no closed flag of its own, so this is the context's job. *)
let count_metric_lines =
  List.fold_left
    (fun acc line ->
      if String.starts_with ~prefix:"{\"type\":\"counter\"" line then acc + 1
      else acc)
    0

let test_close_idempotent_memory () =
  let sink = Trace.memory () in
  let obs = Obs.create ~sink () in
  Obs.count obs "close.test" 1;
  Obs.close obs;
  let after_first = count_metric_lines (Trace.lines sink) in
  Alcotest.(check int) "one metrics dump after first close" 1 after_first;
  Obs.close obs;
  Obs.close obs;
  Alcotest.(check int)
    "repeated closes add nothing" after_first
    (count_metric_lines (Trace.lines sink))

let test_close_idempotent_file () =
  let path = Filename.temp_file "obs_close" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let obs = Obs.create ~sink:(Trace.file path) () in
      Obs.count obs "close.test" 1;
      Obs.close obs;
      Obs.close obs;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int)
        "file carries exactly one metrics dump" 1
        (count_metric_lines !lines))

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub hay i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

(* ---------------- rolling windows ---------------- *)

let test_rolling_window_expiry () =
  let shared = Clock.shared_counter ~start:100.0 () in
  let now = Clock.shared_clock shared in
  (* 6 slots of 10 s each *)
  let h = Rolling.Histogram.create ~slots:6 ~now ~window_s:60.0 () in
  let c = Rolling.Counter.create ~slots:6 ~now ~window_s:60.0 () in
  Rolling.Histogram.observe h 0.5;
  Rolling.Counter.incr c;
  Alcotest.(check int) "one observation" 1 (Rolling.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 0.5 (Rolling.Histogram.sum h);
  Alcotest.(check int) "counter" 1 (Rolling.Counter.value c);
  Clock.advance shared 30.0;
  Rolling.Histogram.observe h 1.0;
  Rolling.Counter.add c 2;
  Alcotest.(check int) "both inside the window" 2 (Rolling.Histogram.count h);
  Alcotest.(check int) "counter sums slots" 3 (Rolling.Counter.value c);
  (* 65 s after the first observation: it has expired, the second lives *)
  Clock.advance shared 35.0;
  Alcotest.(check int) "first expired" 1 (Rolling.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum follows" 1.0 (Rolling.Histogram.sum h);
  Alcotest.(check int) "counter follows" 2 (Rolling.Counter.value c);
  (* far future: empty window, quantile signals emptiness *)
  Clock.advance shared 1000.0;
  Alcotest.(check int) "all expired" 0 (Rolling.Histogram.count h);
  Alcotest.(check int) "counter empty" 0 (Rolling.Counter.value c);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Rolling.Histogram.quantile h 0.5));
  (* NaN observations are dropped, as in the cumulative histogram *)
  Rolling.Histogram.observe h Float.nan;
  Alcotest.(check int) "nan dropped" 0 (Rolling.Histogram.count h)

(* The merged read is a pure function of the live observation multiset:
   any partition of the same values over concurrent writer domains gives
   identical quantiles — determinism at any --jobs. *)
let test_rolling_quantile_determinism () =
  let values = Array.init 1000 (fun i -> 0.0005 *. float_of_int (i + 1)) in
  let run jobs =
    let shared = Clock.shared_counter ~start:50.0 () in
    let now = Clock.shared_clock shared in
    let h = Rolling.Histogram.create ~now ~window_s:3600.0 () in
    let chunk = (Array.length values + jobs - 1) / jobs in
    let domains =
      List.init jobs (fun j ->
          Domain.spawn (fun () ->
              let lo = j * chunk in
              let hi = min (Array.length values) (lo + chunk) in
              for i = lo to hi - 1 do
                Rolling.Histogram.observe h values.(i)
              done))
    in
    List.iter Domain.join domains;
    ( Rolling.Histogram.count h,
      Rolling.Histogram.sum h,
      List.map (Rolling.Histogram.quantile h) [ 0.5; 0.95; 0.99 ] )
  in
  let seq_count, seq_sum, seq_qs = run 1 in
  List.iter
    (fun jobs ->
      let count, sum, qs = run jobs in
      (* counts and quantiles are bucket-exact regardless of domain
         interleaving; the running sum accumulates in a nondeterministic
         order, so only compare it up to float-addition reassociation *)
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        true
        (count = seq_count && qs = seq_qs);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "jobs=%d sum close to sequential" jobs)
        seq_sum sum)
    [ 2; 4; 7 ];
  (* and the window quantile agrees with the cumulative histogram's over
     the same data — same buckets, same interpolation *)
  let cumulative = Metrics.Histogram.create () in
  Array.iter (Metrics.Histogram.observe cumulative) values;
  List.iter2
    (fun q want ->
      Alcotest.(check (float 1e-12)) "matches cumulative quantile" want q)
    seq_qs
    (List.map (Metrics.Histogram.quantile cumulative) [ 0.5; 0.95; 0.99 ])

(* Steady-state observes touch only preallocated arrays: no per-observe
   scratch (the 66-bucket merge buffer is a read-side cost). Minor
   allocation per observe stays under a few boxed floats even in
   bytecode. *)
let test_rolling_bounded_allocation () =
  let shared = Clock.shared_counter ~start:0.0 () in
  let now = Clock.shared_clock shared in
  let h = Rolling.Histogram.create ~now ~window_s:60.0 () in
  (* warm every slot so steady state reuses them *)
  for _ = 1 to 24 do
    Rolling.Histogram.observe h 0.25;
    Clock.advance shared 5.0
  done;
  let n = 10_000 in
  let before = Gc.minor_words () in
  for i = 1 to n do
    Rolling.Histogram.observe h (float_of_int i *. 1e-4);
    if i mod 100 = 0 then Clock.advance shared 1.0
  done;
  let per_observe = (Gc.minor_words () -. before) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words per observe" per_observe)
    true (per_observe < 40.0)

(* ---------------- access log ---------------- *)

let access_record i =
  {
    Access_log.id = Printf.sprintf "rq-%04d" i;
    verb = "estimate";
    outcome = "answered";
    key = "a-b";
    budget_s = (if i mod 2 = 0 then 1.5 else Float.nan);
    wall_s = 0.001 *. float_of_int i;
    cache = (if i mod 2 = 0 then "hit" else "miss");
    shards = i;
    rung = i mod 3;
    estimate = (if i = 0 then Float.infinity else 12.5 *. float_of_int i);
  }

let test_access_log_roundtrip () =
  let path = Filename.temp_file "repro-obs-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let log = Access_log.create ~path ~sleep:(fun _ -> ()) in
      let records = List.init 5 access_record in
      List.iter (Access_log.write log) records;
      Access_log.close log;
      match Access_log.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok back ->
          Alcotest.(check int) "all records" 5 (List.length back);
          List.iter2
            (fun (w : Access_log.record) (g : Access_log.record) ->
              (* non-finite floats round-trip through JSON too *)
              Alcotest.(check string) "id order preserved" w.id g.id;
              Alcotest.(check string) "verb" w.verb g.verb;
              Alcotest.(check string) "cache" w.cache g.cache;
              Alcotest.(check int) "shards" w.shards g.shards;
              Alcotest.(check int) "rung" w.rung g.rung;
              let same_float a b =
                (Float.is_nan a && Float.is_nan b) || a = b
              in
              Alcotest.(check bool) "budget" true (same_float w.budget_s g.budget_s);
              Alcotest.(check bool) "wall" true (same_float w.wall_s g.wall_s);
              Alcotest.(check bool) "estimate" true
                (same_float w.estimate g.estimate))
            records back)

let test_access_log_concurrent_writers () =
  let path = Filename.temp_file "repro-obs-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let log = Access_log.create ~path ~sleep:(fun _ -> ()) in
      let jobs = 4 and per = 200 in
      let domains =
        List.init jobs (fun j ->
            Domain.spawn (fun () ->
                for i = 0 to per - 1 do
                  Access_log.write log (access_record ((j * per) + i))
                done))
      in
      List.iter Domain.join domains;
      Access_log.close log;
      match Access_log.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok back ->
          Alcotest.(check int) "nothing lost in the drain" (jobs * per)
            (List.length back);
          Alcotest.(check int) "ids unique" (jobs * per)
            (List.length
               (List.sort_uniq compare
                  (List.map (fun (r : Access_log.record) -> r.id) back))))

let test_access_log_strict_read () =
  let path = Filename.temp_file "repro-obs-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let log = Access_log.create ~path ~sleep:(fun _ -> ()) in
      Access_log.write log (access_record 0);
      Access_log.close log;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"type\":\"access\",\"id\":42}\n";
      close_out oc;
      match Access_log.read_file path with
      | Ok _ -> Alcotest.fail "malformed line must not be skipped"
      | Error e ->
          Alcotest.(check bool) ("names the line: " ^ e) true
            (contains_sub e "2"))

(* ---------------- exemplars ---------------- *)

let test_histogram_exemplar () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check bool) "fresh histogram has none" true
    (Metrics.Histogram.exemplar h = None);
  Metrics.Histogram.observe_exemplar h ~id:"rq-1" 0.25;
  Metrics.Histogram.observe_exemplar h ~id:"rq-2" 0.5;
  Alcotest.(check bool) "latest exemplar wins" true
    (Metrics.Histogram.exemplar h = Some ("rq-2", 0.5));
  Metrics.Histogram.observe_exemplar h ~id:"rq-3" Float.nan;
  Alcotest.(check bool) "nan keeps the previous exemplar" true
    (Metrics.Histogram.exemplar h = Some ("rq-2", 0.5));
  (* the nan observation is dropped by [observe], so only the two finite
     ones count *)
  Alcotest.(check int) "finite observations counted" 2
    (Metrics.Histogram.count h);
  (* exemplars never surface in rendered output — IDs stay out of the
     metric namespace *)
  let obs = Obs.create () in
  Obs.observe_exemplar obs "req.seconds" ~id:"rq-9" 0.125;
  let body = Option.value ~default:"" (Obs.prometheus obs) in
  Alcotest.(check bool) "rendered" true
    (contains_sub body "req_seconds");
  Alcotest.(check bool) "id invisible" false
    (contains_sub body "rq-9")

(* ---------------- the null context ---------------- *)

let test_null_is_inert () =
  Alcotest.(check bool) "null is not live" false (Obs.is_live Obs.null);
  Obs.count Obs.null "anything" 5;
  Obs.observe Obs.null "anything" 1.0;
  Obs.set_gauge Obs.null "anything" 1.0;
  Alcotest.(check int)
    "span body runs on null" 3
    (Obs.Span.with_ Obs.null ~name:"noop" (fun () -> 3));
  Alcotest.(check bool)
    "no registry" true
    (Option.is_none (Obs.registry Obs.null));
  Alcotest.(check bool)
    "no prometheus" true
    (Option.is_none (Obs.prometheus Obs.null));
  Obs.close Obs.null

let () =
  Alcotest.run "repro_obs"
    [
      ( "atomicity",
        [
          Alcotest.test_case "registry under Pool.map (4 domains)" `Quick
            test_registry_atomic_under_pool;
          Alcotest.test_case "gauge CAS accumulation" `Quick
            test_gauge_cas_accumulation;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "quantile interpolation" `Quick
            test_histogram_quantile;
          Alcotest.test_case "quantile clamp bucket" `Quick
            test_histogram_quantile_clamp_bucket;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parenting" `Quick test_span_nesting;
          Alcotest.test_case "exception path" `Quick test_span_exception_path;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "JSONL round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "golden Prometheus snapshot" `Quick
            test_prometheus_golden;
          Alcotest.test_case "hostile label values" `Quick
            test_prometheus_hostile_labels;
        ] );
      ( "close",
        [
          Alcotest.test_case "idempotent on memory sink" `Quick
            test_close_idempotent_memory;
          Alcotest.test_case "idempotent on file sink" `Quick
            test_close_idempotent_file;
        ] );
      ( "rolling",
        [
          Alcotest.test_case "window expiry under the fake clock" `Quick
            test_rolling_window_expiry;
          Alcotest.test_case "quantiles deterministic at any --jobs" `Quick
            test_rolling_quantile_determinism;
          Alcotest.test_case "bounded allocation at steady state" `Quick
            test_rolling_bounded_allocation;
        ] );
      ( "access log",
        [
          Alcotest.test_case "round trip in write order" `Quick
            test_access_log_roundtrip;
          Alcotest.test_case "concurrent writers drain completely" `Quick
            test_access_log_concurrent_writers;
          Alcotest.test_case "strict reader locates bad lines" `Quick
            test_access_log_strict_read;
        ] );
      ( "exemplars",
        [
          Alcotest.test_case "latest id, never rendered" `Quick
            test_histogram_exemplar;
        ] );
      ( "null context",
        [ Alcotest.test_case "inert" `Quick test_null_is_inert ] );
    ]
