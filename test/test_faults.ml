(* Fault-injection suite: under every injected fault, across hundreds of
   randomized scenarios, the guarded estimator must return [Ok] with a
   finite estimate inside [0, |A| * |B|] and an honest degradation trace —
   zero uncaught exceptions. Plus the degenerate inputs of the checked
   APIs: they return [Error _], never raise. *)

open Repro_relation
module Prng = Repro_util.Prng
module Fault = Csdl.Fault
module Fault_injection = Repro_robustness.Fault_injection
module Guarded = Repro_robustness.Guarded

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let dense = table_of_counts (List.init 12 (fun v -> (v, 4)))
let skewed = table_of_counts [ (1, 30); (2, 8); (3, 3); (4, 1); (5, 1) ]
let pk = table_of_counts (List.init 10 (fun v -> (v, 1)))
let fk = table_of_counts [ (0, 9); (1, 5); (2, 5); (3, 2); (7, 6) ]
let empty = Table.of_rows schema []
let nulls_only =
  Table.of_rows schema (List.init 8 (fun i -> [| Value.Null; Value.Int i |]))
let one_value = table_of_counts [ (42, 9) ]

let table_pairs = [ (dense, dense); (skewed, dense); (fk, pk) ]
let profile_of (a, b) = Csdl.Profile.of_tables a "k" b "k"

let upper_bound (profile : Csdl.Profile.t) =
  float_of_int profile.Csdl.Profile.a.Csdl.Profile.cardinality
  *. float_of_int profile.Csdl.Profile.b.Csdl.Profile.cardinality

(* The cascade's rung names in order, ending with the wired fallback and
   the everything-failed answer. *)
let cascade_names =
  [
    Csdl.Spec.to_string (Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff);
    Csdl.Spec.to_string (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff);
    Csdl.Spec.to_string Csdl.Estimator.scaling_spec;
    Repro_baselines.Independent.name;
    "zero";
  ]

let rec firstn n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: firstn (n - 1) rest

let rec index_of name = function
  | [] -> Alcotest.failf "unknown rung %S" name
  | x :: rest -> if String.equal x name then 0 else 1 + index_of name rest

let run_scenario ?fault ~theta profile seed =
  match Guarded.estimate ?fault ~theta profile (Prng.create seed) with
  | Error fault -> Alcotest.failf "Error: %s" (Fault.error_to_string fault)
  | Ok g -> g

(* One guarded run under one fault: Ok, finite, in range, honest trace. *)
let check_guarded ~label ?fault ~theta profile seed =
  let g = run_scenario ?fault ~theta profile seed in
  let v = g.Csdl.Estimator.value in
  Alcotest.(check bool) (label ^ ": finite") true (Float.is_finite v);
  Alcotest.(check bool)
    (label ^ ": in [0, |A||B|]")
    true
    (v >= 0.0 && v <= upper_bound profile);
  (* the trace must name exactly the rungs tried and failed before the
     one that answered, in cascade order *)
  let k = index_of g.Csdl.Estimator.rung cascade_names in
  Alcotest.(check (list string))
    (label ^ ": trace names the downgrades")
    (firstn k cascade_names)
    (List.map (fun d -> d.Fault.rung) g.Csdl.Estimator.trace);
  g

let test_fault_matrix () =
  let scenarios = ref 0 in
  List.iteri
    (fun fi fault ->
      List.iteri
        (fun ti pair ->
          let profile = profile_of pair in
          List.iteri
            (fun hi theta ->
              for si = 0 to 7 do
                let seed = (fi * 100003) + (ti * 10007) + (hi * 1009) + si in
                let label =
                  Printf.sprintf "%s/pair%d/theta%.1f/seed%d"
                    (Fault_injection.to_string fault)
                    ti theta si
                in
                ignore (check_guarded ~label ~fault ~theta profile seed);
                incr scenarios
              done)
            [ 0.3; 0.7 ])
          table_pairs)
    Fault_injection.all;
  (* no fault at all rides along as a control *)
  List.iteri
    (fun ti pair ->
      let profile = profile_of pair in
      for si = 0 to 7 do
        ignore
          (check_guarded
             ~label:(Printf.sprintf "control/pair%d/seed%d" ti si)
             ~theta:0.5 profile (900001 + (ti * 131) + si));
        incr scenarios
      done)
    table_pairs;
  Alcotest.(check bool)
    (Printf.sprintf "at least 200 scenarios (ran %d)" !scenarios)
    true (!scenarios >= 200)

let test_fault_determinism () =
  List.iter
    (fun fault ->
      let profile = profile_of (skewed, dense) in
      let once () = run_scenario ~fault ~theta:0.5 profile 42 in
      let g1 = once () and g2 = once () in
      Alcotest.(check (float 0.0))
        "same value" g1.Csdl.Estimator.value g2.Csdl.Estimator.value;
      Alcotest.(check string)
        "same rung" g1.Csdl.Estimator.rung g2.Csdl.Estimator.rung;
      Alcotest.(check int) "same trace length"
        (List.length g1.Csdl.Estimator.trace)
        (List.length g2.Csdl.Estimator.trace))
    Fault_injection.all

(* Corruptions the validators must catch kill every sampling rung, so the
   cascade lands on the independence fallback with a full trace. *)
let test_validator_faults_reach_fallback () =
  let profile = profile_of (dense, dense) in
  List.iter
    (fun fault ->
      for seed = 0 to 9 do
        let g =
          run_scenario ~fault ~theta:0.7 profile (7000 + seed)
        in
        Alcotest.(check string)
          (Fault_injection.to_string fault ^ ": fallback answers")
          Repro_baselines.Independent.name g.Csdl.Estimator.rung;
        Alcotest.(check int)
          (Fault_injection.to_string fault ^ ": all rungs in trace")
          3
          (List.length g.Csdl.Estimator.trace);
        Alcotest.(check bool)
          "trace renders" true
          (String.length (Fault.trace_to_string g.Csdl.Estimator.trace) > 0)
      done)
    [ Fault_injection.Corrupt_counts; Fault_injection.Nan_rates ]

let test_lp_failure_degrades_past_csdl () =
  let profile = profile_of (dense, dense) in
  for seed = 0 to 9 do
    let g =
      run_scenario ~fault:Fault_injection.Force_lp_failure ~theta:0.7 profile
        (8000 + seed)
    in
    (* both LP-based rungs must have failed; scaling or the fallback wins *)
    Alcotest.(check bool)
      "winner is LP-free" true
      (index_of g.Csdl.Estimator.rung cascade_names >= 2);
    Alcotest.(check bool)
      "at least the two CSDL rungs downgraded" true
      (List.length g.Csdl.Estimator.trace >= 2);
    List.iteri
      (fun i d ->
        if i < 2 then
          match d.Fault.fault with
          | Fault.Bad_input _ -> ()
          | f ->
              Alcotest.failf "expected Bad_input on CSDL rung, got %s"
                (Fault.error_to_string f))
      g.Csdl.Estimator.trace
  done

(* ---------------- degenerate inputs through the checked APIs ---------------- *)

let draw_synopsis profile seed =
  let spec = Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff in
  let est = Csdl.Estimator.prepare ~sample_first:`A spec ~theta:0.5 profile in
  Csdl.Estimator.draw est (Prng.create seed)

let test_checked_zero_row_tables () =
  List.iter
    (fun pair ->
      let profile = profile_of pair in
      (match Csdl.Estimate.run_checked (draw_synopsis profile 1) with
      | Error (Fault.Empty_filtered_sample _) -> ()
      | Error f ->
          Alcotest.failf "expected Empty_filtered_sample, got %s"
            (Fault.error_to_string f)
      | Ok _ -> Alcotest.fail "expected Error on empty table");
      (* guarded still answers *)
      ignore (check_guarded ~label:"guarded empty" ~theta:0.5 profile 2))
    [ (empty, dense); (dense, empty); (empty, empty) ]

let test_checked_all_null_join_columns () =
  let profile = profile_of (nulls_only, dense) in
  Alcotest.(check int) "truth 0" 0 (Csdl.Profile.true_join_size profile);
  (match Csdl.Estimate.run_checked (draw_synopsis profile 3) with
  | Error (Fault.Empty_filtered_sample _) -> ()
  | Error f ->
      Alcotest.failf "expected Empty_filtered_sample, got %s"
        (Fault.error_to_string f)
  | Ok _ -> Alcotest.fail "expected Error on all-null join column");
  ignore (check_guarded ~label:"guarded all-null" ~theta:0.5 profile 4)

let test_checked_single_distinct_value_join () =
  let profile = profile_of (one_value, one_value) in
  Alcotest.(check int) "truth 81" 81 (Csdl.Profile.true_join_size profile);
  for seed = 0 to 4 do
    ignore
      (check_guarded ~label:"guarded single-value" ~theta:0.8 profile seed)
  done

let test_learn_checked_rejects_bad_arrays () =
  (match Csdl.Discrete_learning.learn_checked [||] with
  | Error (Fault.Bad_input _) -> ()
  | _ -> Alcotest.fail "empty counts: expected Bad_input");
  (match Csdl.Discrete_learning.learn_checked [| 0.0; 0.0; 0.0 |] with
  | Error (Fault.Bad_input _) -> ()
  | _ -> Alcotest.fail "all-zero counts: expected Bad_input");
  (match Csdl.Discrete_learning.learn_checked [| 3.0; Float.nan; 1.0 |] with
  | Error (Fault.Numeric { value; _ }) ->
      Alcotest.(check bool) "NaN reported" true (Float.is_nan value)
  | _ -> Alcotest.fail "NaN count: expected Numeric");
  (match Csdl.Discrete_learning.learn_checked [| 3.0; Float.infinity |] with
  | Error (Fault.Numeric _) -> ()
  | _ -> Alcotest.fail "infinite count: expected Numeric");
  (* the legacy entry point keeps absorbing the same inputs *)
  List.iter
    (fun counts ->
      ignore (Csdl.Discrete_learning.learn counts : Csdl.Discrete_learning.t))
    [ [||]; [| 0.0; 0.0 |]; [| 3.0; Float.nan; 1.0 |] ]

(* The observability layer's downgrade counter must agree exactly with the
   honest traces the guarded API returns: every downgrade recorded once. *)
let test_downgrade_counter_matches_traces () =
  let obs = Repro_obs.Obs.create () in
  let traced = ref 0 in
  List.iter
    (fun fault ->
      List.iter
        (fun pair ->
          let profile = profile_of pair in
          for seed = 0 to 4 do
            match
              Guarded.estimate ~obs ~fault ~theta:0.6 profile
                (Prng.create (60000 + seed))
            with
            | Error f -> Alcotest.failf "Error: %s" (Fault.error_to_string f)
            | Ok g -> traced := !traced + List.length g.Csdl.Estimator.trace
          done)
        table_pairs)
    Fault_injection.all;
  Alcotest.(check bool) "some downgrades occurred" true (!traced > 0);
  let counted =
    match Repro_obs.Obs.registry obs with
    | None -> Alcotest.fail "expected a live context"
    | Some registry ->
        List.fold_left
          (fun acc (name, _, point) ->
            match point with
            | Repro_obs.Metrics.P_counter v
              when String.equal name "estimate.downgrades.total" ->
                acc + v
            | _ -> acc)
          0
          (Repro_obs.Metrics.Registry.snapshot registry)
  in
  Alcotest.(check int)
    "estimate.downgrades.total equals summed trace lengths" !traced counted

let test_guarded_rejects_bad_theta () =
  let profile = profile_of (dense, dense) in
  List.iter
    (fun theta ->
      match Guarded.estimate ~theta profile (Prng.create 1) with
      | Error (Fault.Bad_input _) -> ()
      | Error f ->
          Alcotest.failf "expected Bad_input, got %s" (Fault.error_to_string f)
      | Ok _ -> Alcotest.failf "theta %f accepted" theta)
    [ 0.0; -0.5; 1.5; Float.nan; Float.infinity ]

let () =
  Alcotest.run "repro_robustness"
    [
      ( "fault matrix",
        [
          Alcotest.test_case "200+ randomized scenarios" `Quick
            test_fault_matrix;
          Alcotest.test_case "deterministic replay" `Quick
            test_fault_determinism;
          Alcotest.test_case "validator faults reach fallback" `Quick
            test_validator_faults_reach_fallback;
          Alcotest.test_case "LP failure degrades past CSDL" `Quick
            test_lp_failure_degrades_past_csdl;
          Alcotest.test_case "downgrade counter matches traces" `Quick
            test_downgrade_counter_matches_traces;
        ] );
      ( "degenerate inputs",
        [
          Alcotest.test_case "zero-row tables" `Quick
            test_checked_zero_row_tables;
          Alcotest.test_case "all-null join columns" `Quick
            test_checked_all_null_join_columns;
          Alcotest.test_case "single distinct value" `Quick
            test_checked_single_distinct_value_join;
          Alcotest.test_case "learn_checked bad arrays" `Quick
            test_learn_checked_rejects_bad_arrays;
          Alcotest.test_case "bad theta" `Quick test_guarded_rejects_bad_theta;
        ] );
    ]
