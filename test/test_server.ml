(* Tests for the hardened estimation server: deadlines, backoff, circuit
   breaker, single-flight, the admission queue, the wire protocol, the
   engine's degradation ladder, and one live socket round trip. Timing
   never relies on the wall clock — the shared fake clock drives every
   deadline and cooldown. *)

open Repro_relation
module Clock = Repro_util.Clock
module Prng = Repro_util.Prng
module Obs = Repro_obs.Obs
module Metrics = Repro_obs.Metrics
module Deadline = Repro_server.Deadline
module Backoff = Repro_server.Backoff
module Breaker = Repro_server.Breaker
module Single_flight = Repro_server.Single_flight
module Admission = Repro_server.Admission
module Protocol = Repro_server.Protocol
module Engine = Repro_server.Engine
module Server = Repro_server.Server
module Client = Repro_server.Client

let contains hay needle = Csdl.Fault.contains_substring hay needle

(* ---------------- fixture: tables + a saved store ---------------- *)

let schema = Schema.make [ ("k", Schema.T_int); ("attr", Schema.T_int) ]

let table_of_counts counts =
  Table.of_rows schema
    (List.concat_map
       (fun (v, m) -> List.init m (fun i -> [| Value.Int v; Value.Int i |]))
       counts)

let tables =
  lazy
    (let a = table_of_counts [ (1, 12); (2, 7); (3, 20) ] in
     let b = table_of_counts [ (1, 5); (2, 16); (3, 4) ] in
     let fk = table_of_counts [ (1, 3); (2, 2); (3, 4) ] in
     let pk = table_of_counts (List.init 10 (fun i -> (i, 1))) in
     [ ("a", a); ("b", b); ("fk", fk); ("pk", pk) ])

let resolve_table name = List.assoc name (Lazy.force tables)

let saved_store_path () =
  let store = Csdl.Store.create () in
  let register key ta tb spec =
    let profile =
      Csdl.Profile.of_tables (resolve_table ta) "k" (resolve_table tb) "k"
    in
    let estimator = Csdl.Estimator.prepare spec ~theta:0.5 profile in
    let synopsis = Csdl.Estimator.draw estimator (Prng.create 7) in
    Csdl.Store.add store ~key ~table_a:ta ~table_b:tb estimator synopsis
  in
  register "a-b" "a" "b" (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta);
  register "pk-fk" "pk" "fk" Csdl.Spec.cs2l;
  let path = Filename.temp_file "repro-server" ".synopses" in
  Csdl.Store.save store path;
  (store, path)

let with_store f =
  let store, path = saved_store_path () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f store path)

let engine_exn ?obs ?clock ?sleep config path =
  match Engine.create ?obs ?clock ?sleep config ~resolve_table ~store_path:path with
  | Ok e -> e
  | Error fault -> Alcotest.failf "engine: %s" (Csdl.Fault.error_to_string fault)

(* ---------------- deadline ---------------- *)

let test_deadline_basic () =
  let shared = Clock.shared_counter ~start:10.0 () in
  let clock = Clock.shared_clock shared in
  let d = Deadline.make ~clock ~budget_s:2.0 () in
  Alcotest.(check (float 1e-9)) "budget" 2.0 (Deadline.budget_s d);
  Alcotest.(check (float 1e-9)) "full budget remains" 2.0 (Deadline.remaining d);
  Alcotest.(check bool) "not exceeded" false (Deadline.exceeded d);
  Clock.advance shared 1.5;
  Alcotest.(check (float 1e-9)) "half spent" 0.5 (Deadline.remaining d);
  Clock.advance shared 1.0;
  Alcotest.(check bool) "exceeded" true (Deadline.exceeded d);
  Alcotest.(check (float 1e-9)) "clamped at zero" 0.0 (Deadline.remaining d);
  match Deadline.fault ~what:"request" d with
  | Csdl.Fault.Timeout { what; budget_s } ->
      Alcotest.(check string) "fault names the stage" "request" what;
      Alcotest.(check (float 1e-9)) "fault carries the budget" 2.0 budget_s
  | f -> Alcotest.failf "expected Timeout, got %s" (Csdl.Fault.error_to_string f)

let test_deadline_anchored () =
  let shared = Clock.shared_counter ~start:5.0 () in
  let clock = Clock.shared_clock shared in
  (* anchored in the past: queue wait already burned the budget *)
  let d = Deadline.anchored ~clock ~start:3.0 ~budget_s:1.0 () in
  Alcotest.(check bool) "already exceeded" true (Deadline.exceeded d);
  let d2 = Deadline.anchored ~clock ~start:4.5 ~budget_s:1.0 () in
  Alcotest.(check (float 1e-9)) "partial budget left" 0.5 (Deadline.remaining d2)

let test_deadline_rejects_bad_budget () =
  List.iter
    (fun bad ->
      match Deadline.make ~budget_s:bad () with
      | _ -> Alcotest.failf "budget %f accepted" bad
      | exception Invalid_argument _ -> ())
    [ -1.0; Float.nan; Float.infinity ]

(* ---------------- backoff ---------------- *)

let test_backoff_delay_bounded () =
  let prng = Prng.create 3 in
  let policy = { Backoff.attempts = 5; base_s = 0.01; multiplier = 2.0; max_delay_s = 0.05 } in
  for attempt = 0 to 9 do
    let d = Backoff.delay policy prng ~attempt in
    let cap = Float.min (0.01 *. (2.0 ** float_of_int attempt)) 0.05 in
    if d < 0.0 || d > cap then
      Alcotest.failf "attempt %d: delay %f outside [0, %f]" attempt d cap
  done

let test_backoff_retry_counts () =
  let policy = { Backoff.default with attempts = 4 } in
  let calls = ref 0 in
  let ok_first () = incr calls; Ok !calls in
  let r, attempts = Backoff.retry ~sleep:Clock.no_sleep policy (Prng.create 1) ok_first in
  Alcotest.(check bool) "first try succeeds" true (r = Ok 1);
  Alcotest.(check int) "one attempt" 1 attempts;
  let calls = ref 0 in
  let always_fail () = incr calls; Error "nope" in
  let r, attempts =
    Backoff.retry ~sleep:Clock.no_sleep policy (Prng.create 1) always_fail
  in
  Alcotest.(check bool) "exhausted" true (r = Error "nope");
  Alcotest.(check int) "all attempts used" 4 attempts;
  Alcotest.(check int) "f called per attempt" 4 !calls

let test_backoff_deadline_stops_retries () =
  let shared = Clock.shared_counter () in
  let clock = Clock.shared_clock shared in
  let deadline = Deadline.make ~clock ~budget_s:0.5 () in
  (* the sleeper burns more than the whole budget: after the first failed
     attempt there must be no second one *)
  let sleep d = Clock.advance shared (Float.max d 1.0) in
  let calls = ref 0 in
  let policy = { Backoff.default with attempts = 5 } in
  let r, attempts =
    Backoff.retry ~sleep ~deadline policy (Prng.create 1) (fun () ->
        incr calls;
        Error "nope")
  in
  Alcotest.(check bool) "last error surfaces" true (r = Error "nope");
  Alcotest.(check int) "stopped once the sleep crossed the deadline" 1 attempts;
  Alcotest.(check int) "f not called past the deadline" 1 !calls;
  (* already expired on entry: the mandatory first attempt still runs *)
  Clock.advance shared 10.0;
  let calls = ref 0 in
  let _, attempts =
    Backoff.retry ~sleep ~deadline policy (Prng.create 1) (fun () ->
        incr calls;
        Error "nope")
  in
  Alcotest.(check int) "single attempt when expired" 1 attempts;
  Alcotest.(check int) "one call" 1 !calls

(* ---------------- breaker ---------------- *)

let test_breaker_trips_and_recovers () =
  let shared = Clock.shared_counter () in
  let clock = Clock.shared_clock shared in
  let b = Breaker.create ~clock { Breaker.threshold = 3; cooldown_s = 2.0 } in
  Alcotest.(check bool) "fresh key proceeds" true (Breaker.acquire b "k" = `Proceed);
  Breaker.failure b "k";
  Breaker.failure b "k";
  Alcotest.(check bool) "still closed below threshold" true
    (Breaker.state b "k" = `Closed 2);
  Breaker.failure b "k";
  Alcotest.(check bool) "tripped at threshold" true (Breaker.state b "k" = `Open);
  (match Breaker.acquire b "k" with
  | `Open remaining ->
      Alcotest.(check (float 1e-9)) "cooldown remaining" 2.0 remaining
  | `Proceed -> Alcotest.fail "open breaker must refuse");
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  (* other keys unaffected *)
  Alcotest.(check bool) "independent key" true (Breaker.acquire b "other" = `Proceed);
  Clock.advance shared 2.5;
  Alcotest.(check bool) "half-open probe allowed" true
    (Breaker.acquire b "k" = `Proceed);
  (match Breaker.acquire b "k" with
  | `Open _ -> ()
  | `Proceed -> Alcotest.fail "only one probe at a time");
  Breaker.failure b "k";
  Alcotest.(check bool) "probe failure re-trips" true (Breaker.state b "k" = `Open);
  Clock.advance shared 2.5;
  Alcotest.(check bool) "second probe" true (Breaker.acquire b "k" = `Proceed);
  Breaker.success b "k";
  Alcotest.(check bool) "probe success closes" true (Breaker.state b "k" = `Closed 0);
  Alcotest.(check int) "two trips total" 2 (Breaker.trips b)

(* ---------------- single flight ---------------- *)

let test_single_flight_dedups () =
  let sf = Single_flight.create () in
  let invocations = Atomic.make 0 in
  let release = Atomic.make false in
  let leader_entered = Atomic.make false in
  let run () =
    Single_flight.run sf "key" (fun () ->
        Atomic.incr invocations;
        Atomic.set leader_entered true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        42)
  in
  (* make sure the leader holds the flight open before waiters arrive *)
  let leader = Domain.spawn run in
  while not (Atomic.get leader_entered) do
    Domain.cpu_relax ()
  done;
  let waiters = List.init 3 (fun _ -> Domain.spawn run) in
  while Single_flight.shared sf < 3 do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  let results = List.map Domain.join (leader :: waiters) in
  Alcotest.(check (list int)) "all callers share the leader's result"
    [ 42; 42; 42; 42 ] results;
  Alcotest.(check int) "the expensive call ran once" 1 (Atomic.get invocations);
  Alcotest.(check int) "three deduplicated calls" 3 (Single_flight.shared sf);
  (* the flight window closed: a new call runs fresh *)
  let v = Single_flight.run sf "key" (fun () -> Atomic.incr invocations; 7) in
  Alcotest.(check int) "next call is a fresh flight" 7 v;
  Alcotest.(check int) "second invocation" 2 (Atomic.get invocations)

exception Flaky

let test_single_flight_propagates_exceptions () =
  let sf = Single_flight.create () in
  (match Single_flight.run sf "key" (fun () -> raise Flaky) with
  | _ -> Alcotest.fail "expected Flaky"
  | exception Flaky -> ());
  (* a failed flight is not cached *)
  Alcotest.(check int) "flight after failure runs" 9
    (Single_flight.run sf "key" (fun () -> 9))

(* ---------------- admission ---------------- *)

let test_admission_reject_policy () =
  let q = Admission.create ~policy:Admission.Reject ~capacity:2 () in
  Alcotest.(check bool) "first admitted" true (Admission.offer q 1 = Admission.Admitted);
  Alcotest.(check bool) "second admitted" true (Admission.offer q 2 = Admission.Admitted);
  Alcotest.(check bool) "third rejected" true (Admission.offer q 3 = Admission.Rejected);
  Alcotest.(check int) "depth" 2 (Admission.depth q);
  Alcotest.(check (option int)) "FIFO take" (Some 1) (Admission.take q);
  Alcotest.(check bool) "room again" true (Admission.offer q 4 = Admission.Admitted)

let test_admission_drop_oldest_policy () =
  let q = Admission.create ~policy:Admission.Drop_oldest ~capacity:2 () in
  ignore (Admission.offer q 1);
  ignore (Admission.offer q 2);
  (match Admission.offer q 3 with
  | Admission.Displaced oldest ->
      Alcotest.(check int) "oldest displaced" 1 oldest
  | _ -> Alcotest.fail "expected Displaced");
  Alcotest.(check (option int)) "queue kept the newer items" (Some 2)
    (Admission.take q);
  Alcotest.(check (option int)) "and the arrival" (Some 3) (Admission.take q)

let test_admission_close_drains () =
  let q = Admission.create ~policy:Admission.Reject ~capacity:4 () in
  ignore (Admission.offer q 1);
  ignore (Admission.offer q 2);
  Admission.close q;
  Alcotest.(check bool) "offer after close" true (Admission.offer q 3 = Admission.Closed);
  Alcotest.(check (option int)) "queued items still served" (Some 1) (Admission.take q);
  Alcotest.(check (option int)) "in order" (Some 2) (Admission.take q);
  Alcotest.(check (option int)) "then the end" None (Admission.take q);
  (* a consumer blocked in take must wake on close *)
  let q2 = Admission.create ~policy:Admission.Reject ~capacity:1 () in
  let d = Domain.spawn (fun () -> Admission.take q2) in
  Admission.close q2;
  Alcotest.(check (option int)) "blocked take woken by close" None (Domain.join d)

(* ---------------- protocol ---------------- *)

let test_protocol_parse_request () =
  (match Protocol.parse_request "estimate k1 deadline=0.25 ;; attr < 3 ;; attr >= 1" with
  | Ok (Protocol.Estimate { key; id; deadline_s; pred_a; pred_b }) ->
      Alcotest.(check string) "key" "k1" key;
      Alcotest.(check (option string)) "no id" None id;
      Alcotest.(check (option (float 1e-9))) "deadline" (Some 0.25) deadline_s;
      Alcotest.(check bool) "left parsed" true (pred_a <> None);
      Alcotest.(check bool) "right parsed" true (pred_b <> None)
  | Ok _ -> Alcotest.fail "wrong verb"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Protocol.parse_request "estimate k1" with
  | Ok (Protocol.Estimate { deadline_s = None; pred_a = None; pred_b = None; _ }) -> ()
  | _ -> Alcotest.fail "bare estimate");
  (* option tokens in either order; ids validated at parse time *)
  (match Protocol.parse_request "estimate k1 id=req-1 deadline=0.5" with
  | Ok (Protocol.Estimate { id = Some "req-1"; deadline_s = Some _; _ }) -> ()
  | _ -> Alcotest.fail "id then deadline");
  (match Protocol.parse_request "estimate k1 deadline=0.5 id=req-1 ;; attr < 3" with
  | Ok (Protocol.Estimate { id = Some "req-1"; pred_a = Some _; _ }) -> ()
  | _ -> Alcotest.fail "deadline then id with predicate");
  (match Protocol.parse_request "estimate k1 ;;  ;; attr = 2" with
  | Ok (Protocol.Estimate { pred_a = None; pred_b = Some _; _ }) -> ()
  | _ -> Alcotest.fail "empty left side means no selection");
  List.iter
    (fun (line, expect) ->
      match (Protocol.parse_request line, expect) with
      | Ok r, Some r' when r = r' -> ()
      | Error _, None -> ()
      | _ -> Alcotest.failf "parse %S surprised" line)
    [
      ("health", Some Protocol.Health);
      ("ready", Some Protocol.Ready);
      ("keys", Some Protocol.Keys);
      ("metrics", Some Protocol.Metrics);
      ("quit", Some Protocol.Quit);
      ("estimate", None);
      ("estimate k deadline=zero", None);
      ("estimate k deadline=-1", None);
      ("estimate k id=", None);
      ("estimate k id=bad!char", None);
      ("frobnicate", None);
      ("estimate k1 ;; attr <", None);
    ]

let test_protocol_reply_roundtrip () =
  let check_line line expect_class =
    match Protocol.parse_reply line with
    | Ok r -> Alcotest.(check string) line expect_class (Protocol.reply_class r)
    | Error e -> Alcotest.failf "parse_reply %S: %s" line e
  in
  check_line (Protocol.render_outcome (Engine.Answered 1234.5)) "answered";
  check_line
    (Protocol.render_outcome
       (Engine.Degraded
          {
            value = 10.0;
            trace =
              [
                {
                  Csdl.Fault.rung = "synopsis load";
                  fault = Csdl.Fault.Store_mismatch { what = "checksum"; detail = "d" };
                };
              ];
          }))
    "degraded";
  check_line
    (Protocol.render_outcome
       (Engine.Deadline_exceeded
          (Csdl.Fault.Timeout { what = "request"; budget_s = 0.5 })))
    "deadline_exceeded";
  check_line (Protocol.shed_line ~retry_after_s:0.05 ()) "shed";
  check_line (Protocol.err_line "unknown key\nwith newline") "err";
  (* the answered value must round-trip bit-exactly through the line *)
  let v = 578.09792186905838 in
  (match Protocol.parse_reply (Protocol.render_outcome (Engine.Answered v)) with
  | Ok (Protocol.R_ok v') ->
      Alcotest.(check bool) "bit-exact float round trip" true (v = v')
  | _ -> Alcotest.fail "expected R_ok");
  (* replies without an id keep their historical bytes *)
  Alcotest.(check string)
    "no-id ok line unchanged" "ok 1234.5"
    (Protocol.render_outcome (Engine.Answered 1234.5))

let test_protocol_reply_id_roundtrip () =
  (* every reply shape echoes the id byte-exactly, and parse_reply_id
     recovers it *)
  let outcomes =
    [
      Protocol.render_outcome ~id:"rq.1" (Engine.Answered 1234.5);
      Protocol.render_outcome ~id:"rq.1"
        (Engine.Degraded { value = 10.0; trace = [] });
      Protocol.render_outcome ~id:"rq.1"
        (Engine.Deadline_exceeded
           (Csdl.Fault.Timeout { what = "request"; budget_s = 0.5 }));
      Protocol.shed_line ~id:"rq.1" ~retry_after_s:0.05 ();
      Protocol.err_line ~id:"rq.1" "unknown key nope";
    ]
  in
  List.iter
    (fun line ->
      match Protocol.parse_reply_id line with
      | Ok (id, _) -> Alcotest.(check (option string)) line (Some "rq.1") id
      | Error e -> Alcotest.failf "parse_reply_id %S: %s" line e)
    outcomes;
  (* id sits right after the status word *)
  Alcotest.(check string)
    "ok line bytes" "ok id=rq.1 1234.5" (List.nth outcomes 0);
  (* values survive id stripping bit-exactly *)
  let v = 578.09792186905838 in
  (match
     Protocol.parse_reply_id (Protocol.render_outcome ~id:"x" (Engine.Answered v))
   with
  | Ok (Some "x", Protocol.R_ok v') ->
      Alcotest.(check bool) "bit-exact with id" true (v = v')
  | _ -> Alcotest.fail "expected (Some x, R_ok)");
  (* request render/parse round trip with an id *)
  match
    Protocol.parse_request
      (Protocol.render_estimate ~key:"k1" ~id:"rq.1" ~deadline_s:0.5
         ~pred_a:"attr < 3" ())
  with
  | Ok (Protocol.Estimate { key = "k1"; id = Some "rq.1"; _ }) -> ()
  | _ -> Alcotest.fail "request id round trip"

let test_request_ctx () =
  let module Ctx = Repro_obs.Request_ctx in
  Alcotest.(check bool) "valid" true (Ctx.is_valid_id "a-B.9_c:0");
  Alcotest.(check bool) "empty invalid" false (Ctx.is_valid_id "");
  Alcotest.(check bool) "space invalid" false (Ctx.is_valid_id "a b");
  Alcotest.(check bool) "newline invalid" false (Ctx.is_valid_id "a\nb");
  Alcotest.(check bool) "64 ok" true (Ctx.is_valid_id (String.make 64 'x'));
  Alcotest.(check bool) "65 too long" false
    (Ctx.is_valid_id (String.make 65 'x'));
  (* deterministic per (seed, scope); distinct scopes diverge *)
  let ids gen = List.init 5 (fun _ -> Ctx.next gen) in
  let a = ids (Ctx.generator ~seed:7 "server/h:1") in
  let a' = ids (Ctx.generator ~seed:7 "server/h:1") in
  let b = ids (Ctx.generator ~seed:7 "server/h:2") in
  Alcotest.(check (list string)) "replayable" a a';
  Alcotest.(check bool) "scoped streams differ" true (a <> b);
  List.iter
    (fun id -> Alcotest.(check bool) id true (Ctx.is_valid_id id))
    a;
  Alcotest.(check bool) "distinct in-stream" true
    (List.length (List.sort_uniq compare a) = 5);
  (match Ctx.of_client "ok-id" with
  | Some { Ctx.id = "ok-id"; client_supplied = true } -> ()
  | _ -> Alcotest.fail "of_client valid");
  match Ctx.of_client "bad id" with
  | None -> ()
  | Some _ -> Alcotest.fail "of_client invalid"

(* ---------------- engine ---------------- *)

let far_deadline clock = Deadline.make ~clock ~budget_s:1e6 ()

let test_engine_answers_match_batch_path () =
  with_store (fun store path ->
      let engine = engine_exn Engine.default_config path in
      let clock = Clock.wall in
      List.iter
        (fun key ->
          let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
          let want = Csdl.Store.estimate store ~key ~pred_a:pred in
          match
            Engine.handle engine ~deadline:(far_deadline clock) ~key
              ~pred_a:pred ()
          with
          | Engine.Answered got ->
              if got <> want then
                Alcotest.failf "%s: server %h vs batch %h" key got want
          | o -> Alcotest.failf "%s: expected Answered, got %s" key (Engine.outcome_class o))
        (Csdl.Store.keys store);
      (* orientation: an impossible predicate on the user-facing A side of
         the swapped pk-fk entry must zero the estimate, as in batch *)
      match
        Engine.handle engine ~deadline:(far_deadline clock) ~key:"pk-fk"
          ~pred_a:Predicate.False ()
      with
      | Engine.Answered v -> Alcotest.(check (float 0.0)) "swapped zero" 0.0 v
      | o -> Alcotest.failf "expected Answered, got %s" (Engine.outcome_class o))

let test_engine_unknown_key () =
  with_store (fun _ path ->
      let engine = engine_exn Engine.default_config path in
      Alcotest.(check bool) "mem" true (Engine.mem engine "a-b");
      Alcotest.(check bool) "not mem" false (Engine.mem engine "nope");
      Alcotest.check_raises "unknown key" Not_found (fun () ->
          ignore
            (Engine.handle engine ~deadline:(far_deadline Clock.wall)
               ~key:"nope" ())))

let test_engine_deadline_exceeded () =
  with_store (fun _ path ->
      let shared = Clock.shared_counter () in
      let clock = Clock.shared_clock shared in
      let engine = engine_exn ~clock ~sleep:Clock.no_sleep Engine.default_config path in
      let deadline = Deadline.make ~clock ~budget_s:0.5 () in
      Clock.advance shared 1.0;
      match Engine.handle engine ~deadline ~key:"a-b" () with
      | Engine.Deadline_exceeded (Csdl.Fault.Timeout { what; _ }) ->
          Alcotest.(check string) "typed fault" "request" what
      | o -> Alcotest.failf "expected Deadline_exceeded, got %s" (Engine.outcome_class o))

let overwrite path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_engine_reload () =
  with_store (fun store path ->
      let engine = engine_exn Engine.default_config path in
      Alcotest.(check (list string))
        "initial keys" [ "a-b"; "pk-fk" ] (Engine.keys engine);
      (* rewrite the store at the same path with a different key set and
         swap it in *)
      Csdl.Store.remove store "pk-fk";
      let profile =
        Csdl.Profile.of_tables (resolve_table "b") "k" (resolve_table "a") "k"
      in
      let estimator =
        Csdl.Estimator.prepare
          (Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_theta)
          ~theta:0.5 profile
      in
      let synopsis = Csdl.Estimator.draw estimator (Prng.create 8) in
      Csdl.Store.add store ~key:"b-a" ~table_a:"b" ~table_b:"a" estimator
        synopsis;
      Csdl.Store.save store path;
      (match Engine.reload engine with
      | Ok n -> Alcotest.(check int) "keys served after reload" 2 n
      | Error e -> Alcotest.failf "reload: %s" (Csdl.Fault.error_to_string e));
      Alcotest.(check (list string))
        "reloaded keys" [ "a-b"; "b-a" ] (Engine.keys engine);
      Alcotest.(check bool) "old key gone" false (Engine.mem engine "pk-fk");
      let want = Csdl.Store.estimate store ~key:"b-a" in
      (match
         Engine.handle engine ~deadline:(far_deadline Clock.wall) ~key:"b-a" ()
       with
      | Engine.Answered got ->
          if got <> want then Alcotest.failf "reloaded: %h vs batch %h" got want
      | o ->
          Alcotest.failf "expected Answered, got %s" (Engine.outcome_class o));
      (* a torn store must fail the reload and leave the previous snapshot
         serving *)
      overwrite path "garbage";
      (match Engine.reload engine with
      | Ok _ -> Alcotest.fail "reload of a torn store must fail"
      | Error (Csdl.Fault.Store_mismatch _) -> ()
      | Error e ->
          Alcotest.failf "expected Store_mismatch, got %s"
            (Csdl.Fault.error_to_string e));
      Alcotest.(check (list string))
        "snapshot survives failed reload" [ "a-b"; "b-a" ] (Engine.keys engine);
      match
        Engine.handle engine ~deadline:(far_deadline Clock.wall) ~key:"b-a" ()
      with
      | Engine.Answered got ->
          if got <> want then
            Alcotest.failf "after failed reload: %h vs batch %h" got want
      | o -> Alcotest.failf "expected Answered, got %s" (Engine.outcome_class o))

let test_engine_degrades_and_breaker_trips () =
  with_store (fun store path ->
      let shared = Clock.shared_counter () in
      let clock = Clock.shared_clock shared in
      let obs = Obs.create () in
      let config =
        {
          Engine.default_config with
          cache_capacity = 1;
          breaker = { Breaker.threshold = 2; cooldown_s = 5.0 };
        }
      in
      let engine = engine_exn ~obs ~clock ~sleep:Clock.no_sleep config path in
      (* capacity 1: only the last-warmed key is cached; "a-b" must load
         from disk — which now serves garbage *)
      overwrite path "not a synopsis store";
      let deadline () = Deadline.make ~clock ~budget_s:1e6 () in
      (match Engine.handle engine ~deadline:(deadline ()) ~key:"a-b" () with
      | Engine.Degraded { value; trace } ->
          let profile =
            Csdl.Profile.of_tables (resolve_table "a") "k" (resolve_table "b") "k"
          in
          let prior = Csdl.Estimator.independence_prior profile () in
          Alcotest.(check (float 1e-9)) "prior value" prior value;
          (match trace with
          | [ { Csdl.Fault.rung = "synopsis load"; fault = Csdl.Fault.Store_mismatch _ } ] -> ()
          | t -> Alcotest.failf "unexpected trace: %s" (Csdl.Fault.trace_to_string t))
      | o -> Alcotest.failf "expected Degraded, got %s" (Engine.outcome_class o));
      Alcotest.(check bool) "one failed load sequence: still closed" true
        (Engine.breaker_state engine "a-b" = `Closed 1);
      ignore (Engine.handle engine ~deadline:(deadline ()) ~key:"a-b" ());
      Alcotest.(check bool) "breaker open after threshold" true
        (Engine.breaker_state engine "a-b" = `Open);
      (* open breaker: degrade immediately, with the breaker in the trace *)
      (match Engine.handle engine ~deadline:(deadline ()) ~key:"a-b" () with
      | Engine.Degraded { trace; _ } ->
          Alcotest.(check bool) "trace names the breaker" true
            (contains (Csdl.Fault.trace_to_string trace) "circuit breaker")
      | o -> Alcotest.failf "expected Degraded, got %s" (Engine.outcome_class o));
      (* the cached key keeps answering bit-identically through all of it *)
      let want = Csdl.Store.estimate store ~key:"pk-fk" in
      (match Engine.handle engine ~deadline:(deadline ()) ~key:"pk-fk" () with
      | Engine.Answered got ->
          Alcotest.(check bool) "cached key unaffected" true (got = want)
      | o -> Alcotest.failf "expected Answered, got %s" (Engine.outcome_class o));
      (* cooldown over: the probe retries the (still broken) store *)
      Clock.advance shared 10.0;
      ignore (Engine.handle engine ~deadline:(deadline ()) ~key:"a-b" ());
      Alcotest.(check bool) "probe failure re-trips" true
        (Engine.breaker_state engine "a-b" = `Open);
      (* accounting: every outcome class counted, sums to request count *)
      (match Obs.registry obs with
      | None -> Alcotest.fail "live obs expected"
      | Some registry ->
          let counter ?labels name =
            Metrics.Counter.value (Metrics.Registry.counter registry ?labels name)
          in
          let total = counter "server.requests.total" in
          let sum =
            List.fold_left
              (fun acc cls ->
                acc + counter ~labels:[ ("class", cls) ] "server.outcome")
              0
              [ "answered"; "degraded"; "deadline_exceeded" ]
          in
          Alcotest.(check int) "outcomes sum to requests" total sum;
          Alcotest.(check int) "five requests" 5 total))

let test_engine_chaos_is_deterministic () =
  with_store (fun _ path ->
      let outcomes seed =
        let config =
          { Engine.default_config with cache_capacity = 1; chaos = 0.5; seed }
        in
        let engine = engine_exn ~sleep:Clock.no_sleep config path in
        List.init 20 (fun _ ->
            Engine.outcome_class
              (Engine.handle engine ~deadline:(far_deadline Clock.wall)
                 ~key:"a-b" ()))
      in
      Alcotest.(check (list string))
        "same seed, same outcome sequence" (outcomes 5) (outcomes 5);
      let a = outcomes 5 in
      Alcotest.(check bool) "chaos actually degrades something" true
        (List.mem "degraded" a))

(* ---------------- drift sentinels ---------------- *)

(* Deterministic accuracy-regression trip: rewrite the stored sentinel
   truths to be wildly wrong (as if the base data drifted under a stale
   synopsis) and check the replay flags every keyed sentinel past the
   limit — and none below a huge limit. *)
let test_engine_drift_sentinels () =
  with_store (fun _ path ->
      (* fresh store: sentinels replayed at create, status populated *)
      let engine = engine_exn Engine.default_config path in
      let status = Engine.drift_status engine in
      Alcotest.(check (list string))
        "one status per key" [ "a-b"; "pk-fk" ]
        (List.map (fun d -> d.Engine.d_key) status);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (d.Engine.d_key ^ " qerror is a finite >= 1") true
            (Float.is_finite d.Engine.d_qerror && d.Engine.d_qerror >= 1.0);
          (* a just-built store replays bit-identically to its recorded
             baselines, so the worsening factor is exactly 1 and a fresh
             store never warns — however hard its sentinels are *)
          Alcotest.(check (float 0.0))
            (d.Engine.d_key ^ " no worsening on a fresh store")
            1.0 d.Engine.d_worsened;
          Alcotest.(check bool)
            (d.Engine.d_key ^ " fresh store does not trip")
            true (d.Engine.d_fault = None))
        status;
      Alcotest.(check bool) "replays feed the rolling window" true
        (Repro_obs.Rolling.Histogram.count (Engine.sentinel_window engine) > 0);
      (* tamper: recorded truths 1000x off *)
      let entries =
        match Csdl.Synopsis_store.read ~resolve_table ~path with
        | Ok entries -> entries
        | Error f -> Alcotest.failf "read: %s" (Csdl.Fault.error_to_string f)
      in
      Alcotest.(check bool) "store carries sentinels" true
        (List.for_all
           (fun (e : Csdl.Synopsis_store.stored) -> e.sentinels <> [])
           entries);
      let tampered =
        List.map
          (fun (e : Csdl.Synopsis_store.stored) ->
            {
              e with
              sentinels =
                List.map
                  (fun (s : Csdl.Sentinel.t) ->
                    { s with truth = (s.truth +. 1.0) *. 1000.0 })
                  e.sentinels;
            })
          entries
      in
      Csdl.Synopsis_store.write ~path tampered;
      let obs = Obs.create () in
      let engine = engine_exn ~obs Engine.default_config path in
      let status = Engine.drift_status engine in
      Alcotest.(check int) "both keys drifted" 2
        (List.length
           (List.filter (fun d -> d.Engine.d_fault <> None) status));
      List.iter
        (fun d ->
          match d.Engine.d_fault with
          | Some (Csdl.Fault.Drift { key; worsened; limit }) ->
              Alcotest.(check string) "fault names the key" d.Engine.d_key key;
              Alcotest.(check bool) "past the limit" true (worsened > limit)
          | Some f ->
              Alcotest.failf "expected Drift, got %s"
                (Csdl.Fault.error_to_string f)
          | None -> Alcotest.fail "expected a drift fault")
        status;
      (match Obs.registry obs with
      | None -> Alcotest.fail "live obs expected"
      | Some registry ->
          Alcotest.(check bool) "trip counter advanced" true
            (Metrics.Counter.value
               (Metrics.Registry.counter registry "server.drift.tripped")
            > 0));
      (* an indulgent limit keeps the same store quiet *)
      let engine =
        engine_exn { Engine.default_config with drift_limit = 1e12 } path
      in
      Alcotest.(check int) "no trips below the limit" 0
        (List.length
           (List.filter
              (fun d -> d.Engine.d_fault <> None)
              (Engine.drift_status engine))))

(* ---------------- server + client over a real socket ---------------- *)

let test_server_socket_roundtrip () =
  with_store (fun store path ->
      let obs = Obs.create () in
      let engine = engine_exn ~obs Engine.default_config path in
      let config =
        { (Server.default_config ~port:0) with jobs = 2; default_deadline_s = 30.0 }
      in
      let srv = Server.create ~obs config engine in
      let port = Server.port srv in
      let domain = Domain.spawn (fun () -> Server.serve srv) in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Domain.join domain)
        (fun () ->
          let c = Client.connect ~host:"127.0.0.1" ~port () in
          Alcotest.(check string) "health" "ok serving" (Client.raw c "health");
          Alcotest.(check string) "ready" "ok ready keys=2" (Client.raw c "ready");
          Alcotest.(check string) "keys" "ok a-b pk-fk" (Client.raw c "keys");
          (let want = Csdl.Store.estimate store ~key:"a-b" in
           match Client.estimate c ~key:"a-b" () with
           | Ok (Protocol.R_ok got) ->
               Alcotest.(check bool) "estimate matches the batch path" true
                 (got = want)
           | r ->
               Alcotest.failf "unexpected reply: %s"
                 (match r with
                 | Ok r -> Protocol.reply_class r
                 | Error e -> e));
          (match Client.estimate c ~key:"a-b" ~pred_a:"attr < 3" () with
          | Ok (Protocol.R_ok got) ->
              let pred = Predicate.Compare (Predicate.Lt, "attr", Value.Int 3) in
              let want = Csdl.Store.estimate store ~key:"a-b" ~pred_a:pred in
              Alcotest.(check bool) "predicate round trip" true (got = want)
          | _ -> Alcotest.fail "expected R_ok");
          (match Client.estimate c ~key:"nope" () with
          | Ok (Protocol.R_err msg) ->
              Alcotest.(check bool) "unknown key errs" true (contains msg "nope")
          | _ -> Alcotest.fail "expected R_err");
          (match Client.estimate c ~key:"a-b" ~deadline_s:1e-9 () with
          | Ok (Protocol.R_deadline_exceeded _) -> ()
          | _ -> Alcotest.fail "expected deadline_exceeded");
          (match Client.metrics c with
          | Ok body ->
              Alcotest.(check bool) "metrics body has server counters" true
                (contains body "server_outcome");
              Alcotest.(check bool) "metrics body has build info" true
                (contains body "repro_build_info");
              Alcotest.(check bool) "metrics body has runtime gauges" true
                (contains body "runtime_gc_heap_words");
              Alcotest.(check bool) "metrics body has slo gauges" true
                (contains body "server_slo_p99_seconds")
          | Error e -> Alcotest.failf "metrics: %s" e);
          (let slo = Client.raw c "slo" in
           Alcotest.(check bool) ("slo reply: " ^ slo) true
             (String.length slo > 10 && String.sub slo 0 10 = "ok window="
             && contains slo "p99=" && contains slo "drift="));
          Alcotest.(check string) "quit" "ok bye" (Client.raw c "quit");
          Client.close c))

(* request-ID propagation and the access log, over a live socket *)
let test_server_telemetry_roundtrip () =
  with_store (fun store path ->
      let log_path = Filename.temp_file "repro-access" ".jsonl" in
      let log = Repro_obs.Access_log.create ~path:log_path ~sleep:Clock.sleepf in
      let engine = engine_exn Engine.default_config path in
      let config =
        { (Server.default_config ~port:0) with jobs = 2; default_deadline_s = 30.0 }
      in
      let srv = Server.create ~access_log:log config engine in
      let port = Server.port srv in
      let domain = Domain.spawn (fun () -> Server.serve srv) in
      Fun.protect
        ~finally:(fun () -> Sys.remove log_path)
        (fun () ->
          let c = Client.connect ~host:"127.0.0.1" ~port () in
          let want = Csdl.Store.estimate store ~key:"a-b" in
          (* client-supplied id echoed byte-exactly *)
          (match Client.estimate_full c ~id:"cli-0001" ~key:"a-b" () with
          | Ok (Some "cli-0001", Protocol.R_ok got) ->
              Alcotest.(check bool) "value with id still batch-exact" true
                (got = want)
          | Ok (id, r) ->
              Alcotest.failf "echo: got id %s class %s"
                (Option.value ~default:"<none>" id)
                (Protocol.reply_class r)
          | Error e -> Alcotest.failf "estimate_full: %s" e);
          (* server-assigned id: present, wire-valid, and not ours *)
          let assigned =
            match Client.estimate_full c ~key:"a-b" () with
            | Ok (Some rid, Protocol.R_ok _) ->
                Alcotest.(check bool) "assigned id is wire-valid" true
                  (Repro_obs.Request_ctx.is_valid_id rid);
                rid
            | _ -> Alcotest.fail "expected an assigned id"
          in
          Alcotest.(check bool) "assigned differs from client ids" true
            (assigned <> "cli-0001");
          (* errors echo the id too *)
          (match Client.estimate_full c ~id:"cli-0002" ~key:"nope" () with
          | Ok (Some "cli-0002", Protocol.R_err _) -> ()
          | _ -> Alcotest.fail "err reply must echo the id");
          Client.close c;
          Server.stop srv;
          Domain.join domain;
          Repro_obs.Access_log.close log;
          (* one record per request, joinable by id, zero orphans *)
          match Repro_obs.Access_log.read_file log_path with
          | Error e -> Alcotest.failf "access log: %s" e
          | Ok records ->
              let by_id id =
                List.find_opt
                  (fun (r : Repro_obs.Access_log.record) -> r.id = id)
                  records
              in
              (match by_id "cli-0001" with
              | Some r ->
                  Alcotest.(check string) "verb" "estimate" r.verb;
                  Alcotest.(check string) "outcome" "answered" r.outcome;
                  Alcotest.(check string) "key" "a-b" r.key;
                  Alcotest.(check (float 1e-9)) "budget" 30.0 r.budget_s;
                  Alcotest.(check bool) "estimate logged" true
                    (r.estimate = want);
                  Alcotest.(check bool) "cache column filled" true
                    (r.cache = "hit" || r.cache = "miss");
                  Alcotest.(check bool) "wall time recorded" true
                    (Float.is_finite r.wall_s && r.wall_s >= 0.0)
              | None -> Alcotest.fail "cli-0001 missing from the log");
              (match by_id assigned with
              | Some r ->
                  Alcotest.(check string) "assigned verb" "estimate" r.verb
              | None -> Alcotest.fail "assigned id missing from the log");
              (match by_id "cli-0002" with
              | Some r -> Alcotest.(check string) "err logged" "err" r.outcome
              | None -> Alcotest.fail "cli-0002 missing from the log");
              Alcotest.(check int) "three estimate records" 3
                (List.length
                   (List.filter
                      (fun (r : Repro_obs.Access_log.record) ->
                        r.verb = "estimate")
                      records))))

let () =
  Alcotest.run "repro_server"
    [
      ( "deadline",
        [
          Alcotest.test_case "budget and remaining" `Quick test_deadline_basic;
          Alcotest.test_case "anchored at accept" `Quick test_deadline_anchored;
          Alcotest.test_case "rejects bad budgets" `Quick
            test_deadline_rejects_bad_budget;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "jittered delay bounded" `Quick
            test_backoff_delay_bounded;
          Alcotest.test_case "attempt accounting" `Quick test_backoff_retry_counts;
          Alcotest.test_case "deadline stops retries" `Quick
            test_backoff_deadline_stops_retries;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips, cools down, recovers" `Quick
            test_breaker_trips_and_recovers;
        ] );
      ( "single flight",
        [
          Alcotest.test_case "concurrent misses dedup" `Quick
            test_single_flight_dedups;
          Alcotest.test_case "exceptions propagate, not cached" `Quick
            test_single_flight_propagates_exceptions;
        ] );
      ( "admission",
        [
          Alcotest.test_case "reject policy" `Quick test_admission_reject_policy;
          Alcotest.test_case "drop-oldest policy" `Quick
            test_admission_drop_oldest_policy;
          Alcotest.test_case "close drains" `Quick test_admission_close_drains;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request grammar" `Quick test_protocol_parse_request;
          Alcotest.test_case "reply round trip" `Quick test_protocol_reply_roundtrip;
          Alcotest.test_case "request ids round trip" `Quick
            test_protocol_reply_id_roundtrip;
          Alcotest.test_case "request-id generator" `Quick test_request_ctx;
        ] );
      ( "engine",
        [
          Alcotest.test_case "answers match the batch path" `Quick
            test_engine_answers_match_batch_path;
          Alcotest.test_case "unknown key" `Quick test_engine_unknown_key;
          Alcotest.test_case "reload swaps the snapshot" `Quick
            test_engine_reload;
          Alcotest.test_case "deadline exceeded" `Quick
            test_engine_deadline_exceeded;
          Alcotest.test_case "degrades and breaker trips" `Quick
            test_engine_degrades_and_breaker_trips;
          Alcotest.test_case "chaos is deterministic" `Quick
            test_engine_chaos_is_deterministic;
          Alcotest.test_case "drift sentinels trip deterministically" `Quick
            test_engine_drift_sentinels;
        ] );
      ( "socket",
        [
          Alcotest.test_case "live round trip" `Quick test_server_socket_roundtrip;
          Alcotest.test_case "request telemetry round trip" `Quick
            test_server_telemetry_roundtrip;
        ] );
    ]
