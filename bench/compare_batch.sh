#!/bin/sh
# Batched vs unbatched online estimation from one persisted synopsis
# store: build a small store over generated CSVs, answer 20 predicate
# queries with `repro_cli batch` (one load, one process) and with 20
# separate `synopsis-estimate` invocations, and require the two estimate
# columns to be byte-identical. Then a larger timed workload (40k x 30k
# rows, 300 queries) whose whole-batch online wall sits above the
# regression gate's 10ms clock-noise floor — the artifact it writes
# (BENCH_batchwork.json) is what lets `bench diff
# --max-online-wall-ratio` bound the online hot path for real. Run from
# the bench build directory by the @bench-smoke alias.
set -eu

{
  echo k,attr
  i=0
  while [ $i -lt 200 ]; do
    echo "$((i % 20)),$((i % 7))"
    i=$((i + 1))
  done
} > smoke-left.csv

{
  echo k,attr
  i=0
  while [ $i -lt 140 ]; do
    echo "$((i % 14)),$((i % 5))"
    i=$((i + 1))
  done
} > smoke-right.csv

awk 'BEGIN {
  for (i = 0; i < 20; i++)
    printf "attr < %d ;; attr > %d\n", (i % 7) + 1, i % 3
}' > smoke-queries.txt

../bin/repro_cli.exe synopsis-build "ab=smoke-left.csv:k,smoke-right.csv:k" \
  --theta 0.5 --seed 11 --store smoke-synopses.bin

../bin/repro_cli.exe batch ab --store smoke-synopses.bin \
  --queries smoke-queries.txt --bench-json BENCH_batch.json > batch-out.txt

test "$(wc -l < batch-out.txt)" -eq 20
grep -q '"offline_wall_seconds"' BENCH_batch.json
grep -q '"experiment": "batch"' BENCH_batch.json

while IFS= read -r line; do
  left=${line%%;;*}
  right=${line#*;;}
  ../bin/repro_cli.exe synopsis-estimate ab --store smoke-synopses.bin \
    --where-left "$left" --where-right "$right"
done < smoke-queries.txt > unbatched-out.txt

awk '{ print $NF }' batch-out.txt > batch-vals.txt
awk '{ print $NF }' unbatched-out.txt > unbatched-vals.txt
cmp batch-vals.txt unbatched-vals.txt
echo "batch vs unbatched: 20 estimates byte-identical"

# ---- timed online workload ----
# Big enough that the summed online wall clears the 10ms floor on any
# machine, small enough to stay a smoke test (store build + 300 queries
# run in well under a second on the flat hot path).
awk 'BEGIN {
  print "k,attr"
  for (i = 0; i < 40000; i++) printf "%d,%d\n", i % 400, i % 97
}' > work-left.csv
awk 'BEGIN {
  print "k,attr"
  for (i = 0; i < 30000; i++) printf "%d,%d\n", i % 350, i % 83
}' > work-right.csv
awk 'BEGIN {
  for (i = 0; i < 300; i++)
    printf "attr < %d ;; attr > %d\n", (i % 90) + 5, i % 40
}' > work-queries.txt

../bin/repro_cli.exe synopsis-build "work=work-left.csv:k,work-right.csv:k" \
  --theta 0.5 --seed 23 --store work-synopses.bin

../bin/repro_cli.exe batch work --store work-synopses.bin \
  --queries work-queries.txt --bench-json BENCH_batchwork.json > work-out.txt

test "$(wc -l < work-out.txt)" -eq 300
grep -q '"experiment": "batch-online"' BENCH_batchwork.json
echo "timed workload: 300 queries, batch-online aggregate recorded"
