#!/bin/sh
# Batched vs unbatched online estimation from one persisted synopsis
# store: build a small store over generated CSVs, answer 20 predicate
# queries with `repro_cli batch` (one load, one process) and with 20
# separate `synopsis-estimate` invocations, and require the two estimate
# columns to be byte-identical. Run from the bench build directory by the
# @bench-smoke alias.
set -eu

{
  echo k,attr
  i=0
  while [ $i -lt 200 ]; do
    echo "$((i % 20)),$((i % 7))"
    i=$((i + 1))
  done
} > smoke-left.csv

{
  echo k,attr
  i=0
  while [ $i -lt 140 ]; do
    echo "$((i % 14)),$((i % 5))"
    i=$((i + 1))
  done
} > smoke-right.csv

awk 'BEGIN {
  for (i = 0; i < 20; i++)
    printf "attr < %d ;; attr > %d\n", (i % 7) + 1, i % 3
}' > smoke-queries.txt

../bin/repro_cli.exe synopsis-build "ab=smoke-left.csv:k,smoke-right.csv:k" \
  --theta 0.5 --seed 11 --store smoke-synopses.bin

../bin/repro_cli.exe batch ab --store smoke-synopses.bin \
  --queries smoke-queries.txt --bench-json BENCH_batch.json > batch-out.txt

test "$(wc -l < batch-out.txt)" -eq 20
grep -q '"offline_wall_seconds"' BENCH_batch.json
grep -q '"experiment": "batch"' BENCH_batch.json

while IFS= read -r line; do
  left=${line%%;;*}
  right=${line#*;;}
  ../bin/repro_cli.exe synopsis-estimate ab --store smoke-synopses.bin \
    --where-left "$left" --where-right "$right"
done < smoke-queries.txt > unbatched-out.txt

awk '{ print $NF }' batch-out.txt > batch-vals.txt
awk '{ print $NF }' unbatched-out.txt > unbatched-vals.txt
cmp batch-vals.txt unbatched-vals.txt
echo "batch vs unbatched: 20 estimates byte-identical"
