#!/bin/sh
# End-to-end smoke of the estimation daemon: build a two-key store over
# generated CSVs, serve it on a fixed port, and require (1) the client's
# query-file mode to be byte-identical to `repro_cli batch` over the same
# store, (2) the protocol verbs to answer, (3) SIGTERM to exit 0 after
# "shutdown complete", and (4) a brief --chaos run to inject faults and
# still serve every query without crashing. Run from the bench build
# directory by the @server-smoke alias.
set -eu

PORT=7457

{
  echo k,attr
  i=0
  while [ $i -lt 200 ]; do
    echo "$((i % 20)),$((i % 7))"
    i=$((i + 1))
  done
} > srv-left.csv

{
  echo k,attr
  i=0
  while [ $i -lt 140 ]; do
    echo "$((i % 14)),$((i % 5))"
    i=$((i + 1))
  done
} > srv-right.csv

awk 'BEGIN {
  for (i = 0; i < 20; i++)
    printf "attr < %d ;; attr > %d\n", (i % 7) + 1, i % 3
}' > srv-queries.txt

# two keys so the chaos phase can churn a capacity-1 cache
../bin/repro_cli.exe synopsis-build \
  "ab=srv-left.csv:k,srv-right.csv:k" \
  "cd=srv-right.csv:k,srv-left.csv:k" \
  --theta 0.5 --seed 11 --store srv-synopses.bin

../bin/repro_cli.exe batch ab --store srv-synopses.bin \
  --queries srv-queries.txt > srv-batch-out.txt

wait_ready() {
  i=0
  until ../bin/repro_cli.exe client --port $PORT --verb ready \
      > srv-ready.txt 2> /dev/null; do
    i=$((i + 1))
    if [ $i -ge 100 ]; then
      echo "server did not become ready" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# ---- phase 1: parity with batch, verbs, clean SIGTERM ----

../bin/repro_cli.exe serve --store srv-synopses.bin --port $PORT \
  --access-log srv-access.jsonl 2> srv-server.log &
SRV=$!
wait_ready srv-server.log
grep -q 'ok ready keys=2' srv-ready.txt

../bin/repro_cli.exe client --port $PORT --verb health | grep -q 'ok serving'
../bin/repro_cli.exe client --port $PORT --verb keys | grep -q 'ab'
../bin/repro_cli.exe client --port $PORT --verb slo | grep -q '^ok window='
../bin/repro_cli.exe client --port $PORT --verb metrics > srv-metrics.txt
grep -q 'server_requests_total' srv-metrics.txt
grep -q 'repro_build_info' srv-metrics.txt
grep -q 'runtime_gc_heap_words' srv-metrics.txt
grep -q 'server_slo_p99_seconds' srv-metrics.txt

# reload re-reads the store from disk and swaps the snapshot atomically;
# the store is unchanged here, so the key count must survive the swap
../bin/repro_cli.exe client --port $PORT --verb reload \
  | grep -q 'ok reloaded keys=2'

# the load-bearing assertion: the served estimates are byte-identical to
# the batch pipeline over the same store, ids and %.17g floats included
../bin/repro_cli.exe client --port $PORT --key ab \
  --queries srv-queries.txt > srv-client-out.txt
cmp srv-batch-out.txt srv-client-out.txt

kill -TERM $SRV
wait $SRV    # set -e: a non-zero exit status fails the smoke
grep -q 'shutdown complete' srv-server.log

# the access-log writer must have drained on shutdown: one JSON object
# per request served, estimate records tagged with their request IDs
test -s srv-access.jsonl
grep -q '"verb":"estimate"' srv-access.jsonl
grep -q '"id":"' srv-access.jsonl
echo "server vs batch: 20 estimates byte-identical; SIGTERM exited 0"

# ---- phase 2: chaos mode keeps serving ----

# capacity 1 over 2 keys: alternating queries miss the cache, forcing
# real store loads, 90% of which the chaos hook corrupts or fails
../bin/repro_cli.exe serve --store srv-synopses.bin --port $PORT \
  --cache-capacity 1 --chaos 0.9 --seed 5 2> srv-chaos.log &
SRV=$!
wait_ready srv-chaos.log

j=0
while [ $j -lt 6 ]; do
  ../bin/repro_cli.exe client --port $PORT --key ab > /dev/null
  ../bin/repro_cli.exe client --port $PORT --key cd > /dev/null
  j=$((j + 1))
done

# every query still gets a one-line reply (answered or degraded)
../bin/repro_cli.exe client --port $PORT --key ab \
  --queries srv-queries.txt > srv-chaos-out.txt
test "$(wc -l < srv-chaos-out.txt)" -eq 20

../bin/repro_cli.exe client --port $PORT --verb metrics > srv-chaos-metrics.txt
grep 'server_chaos_injected' srv-chaos-metrics.txt \
  | awk '{ s += $NF } END { exit !(s > 0) }'

kill -TERM $SRV
wait $SRV
grep -q 'shutdown complete' srv-chaos.log
echo "chaos mode: faults injected, every query answered, SIGTERM exited 0"
