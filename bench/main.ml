(* Benchmark harness: regenerates every experimental table of the paper
   (Tables IV-IX plus the Section VI-A estimation-time comparison) and runs
   one Bechamel micro-benchmark per table.

   Usage:  dune exec bench/main.exe -- [--quick] [--smoke] [--jobs N]
                                       [--skip-bechamel] [--skip-ablations]
                                       [--csv DIR] [--tables 4,5,6,7,8,9]
                                       [--trace FILE] [--bench-json FILE]
   Environment: REPRO_SCALE, REPRO_RUNS, REPRO_SEED, REPRO_PREFIXES,
   REPRO_JOBS (see Repro_benchlib.Config).

   Experiment cells run on a pool of [--jobs] OCaml domains
   (Repro_util.Pool); every cell owns a keyed PRNG stream, so table output
   is bit-identical at any [--jobs]. Deterministic tables go to stdout;
   progress banners and measured timings go to stderr, so
   `main.exe --smoke --jobs N > out.txt` is byte-comparable across N.

   --trace FILE turns on the observability layer (lib/obs): spans and a
   final metrics dump go to FILE as JSONL and a Prometheus-style snapshot
   goes to stderr. Instrumentation never touches a PRNG stream, so stdout
   stays byte-identical with tracing on or off.

   --bench-json FILE collects per-cell estimate provenance (query, variant,
   sample size, truth, estimate, q-error, timings) from every runner and
   writes the versioned BENCH artifact FILE at exit — the input of
   `repro_cli bench diff`. Same opt-in contract as --trace: collection
   happens in the sequential reassembly phases and never perturbs stdout. *)

open Repro_benchlib
module Prng = Repro_util.Prng
module Clock = Repro_util.Clock
module Job = Repro_datagen.Job_workload
module Obs = Repro_obs.Obs
open Repro_relation

type options = {
  quick : bool;
  smoke : bool;
  jobs : int option;  (* --jobs override; otherwise Config.from_env *)
  skip_bechamel : bool;
  skip_ablations : bool;
  tables : int list;  (* which paper tables to regenerate *)
  trace : string option;  (* --trace FILE: JSONL span/metric export *)
  bench_json : string option;  (* --bench-json FILE: provenance artifact *)
}

let usage =
  "usage: main.exe [--quick] [--smoke] [--jobs N] [--skip-bechamel]\n\
  \                [--skip-ablations] [--csv DIR] [--tables 4,5,...]\n\
  \                [--trace FILE] [--bench-json FILE]\n"

let parse_options () =
  let quick = ref false and smoke = ref false in
  let jobs = ref None in
  let skip_bechamel = ref false and skip_ablations = ref false in
  let tables = ref [ 4; 5; 6; 7; 8; 9 ] in
  let trace = ref None in
  let bench_json = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := Some n;
            parse rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n%s" n
              usage;
            exit 2)
    | "--skip-bechamel" :: rest ->
        skip_bechamel := true;
        parse rest
    | "--skip-ablations" :: rest ->
        skip_ablations := true;
        parse rest
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Repro_benchlib.Render.set_csv_dir (Some dir);
        parse rest
    | "--tables" :: spec :: rest ->
        tables :=
          String.split_on_char ',' spec
          |> List.filter_map int_of_string_opt;
        parse rest
    | "--trace" :: file :: rest ->
        trace := Some file;
        parse rest
    | "--bench-json" :: file :: rest ->
        bench_json := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n%s" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  {
    quick = !quick;
    smoke = !smoke;
    jobs = !jobs;
    skip_bechamel = !skip_bechamel;
    skip_ablations = !skip_ablations;
    tables = !tables;
    trace = !trace;
    bench_json = !bench_json;
  }

let wants options n = List.mem n options.tables

(* Stage banner: wall clock is the headline (the paper's latency metric);
   CPU time rides along — under the domain pool it sums over every worker,
   so cpu >> wall is the expected signature of parallel execution. Banners
   go to stderr: stdout carries only the deterministic tables. *)
let timed ?(obs = Obs.null) label f =
  let result, span =
    Clock.time (fun () ->
        Obs.Span.with_ obs ~name:"bench.stage" ~attrs:[ ("stage", label) ] f)
  in
  Format.eprintf "[%s: %.1fs wall, %.1fs cpu]@." label span.Clock.wall_seconds
    span.Clock.cpu_seconds;
  result

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper table            *)
(* ------------------------------------------------------------------ *)

let bechamel_tests config data =
  let open Bechamel in
  let prng = Prng.create (config.Config.seed + 77) in
  let queries = Job.two_table_queries data in
  let find_query name =
    match List.find_opt (fun q -> q.Job.name = name) queries with
    | Some q -> q
    | None ->
        failwith
          (Printf.sprintf
             "bechamel: no query %S in the two-table workload (have: %s)" name
             (String.concat ", " (List.map (fun q -> q.Job.name) queries)))
  in
  let pair_estimate_test ~name ~query_name ~spec ~theta =
    let q = find_query query_name in
    let profile =
      Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
        q.Job.b.Join.table q.Job.b.Join.column
    in
    let estimator = Csdl.Estimator.prepare spec ~theta profile in
    let synopsis = Csdl.Estimator.draw estimator prng in
    Test.make ~name
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Csdl.Estimator.estimate ~pred_a:q.Job.a.Join.predicate
                ~pred_b:q.Job.b.Join.predicate estimator synopsis)))
  in
  let table7_test =
    let q = Job.pkfk_prefix_query data ~prefix:"The" in
    let profile =
      Csdl.Profile.of_tables q.Job.a.Join.table q.Job.a.Join.column
        q.Job.b.Join.table q.Job.b.Join.column
    in
    let estimator = Csdl.Opt.prepare ~theta:0.001 profile in
    let synopsis = Csdl.Estimator.draw estimator prng in
    Test.make ~name:"table7/pkfk-prefix-estimate"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Csdl.Estimator.estimate ~pred_a:q.Job.a.Join.predicate
                ~pred_b:q.Job.b.Join.predicate estimator synopsis)))
  in
  let table8_test =
    let d = Repro_datagen.Tpch.generate ~scale:0.1 ~z:4.0 ~seed:config.Config.seed in
    let profile =
      Csdl.Profile.of_tables d.Repro_datagen.Tpch.customer "c_nationkey"
        d.Repro_datagen.Tpch.supplier "s_nationkey"
    in
    let estimator = Csdl.Opt.prepare ~theta:0.001 profile in
    let synopsis = Csdl.Estimator.draw estimator prng in
    Test.make ~name:"table8/skewed-tpch-estimate"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Csdl.Estimator.estimate estimator synopsis)))
  in
  let table9_test =
    let d = Repro_datagen.Tpch.generate ~scale:0.1 ~z:2.0 ~seed:config.Config.seed in
    let tables =
      {
        Csdl.Chain.a = d.Repro_datagen.Tpch.customer;
        a_pk = "c_custkey";
        b = d.Repro_datagen.Tpch.orders;
        b_pk = "o_orderkey";
        b_fk = "o_custkey";
        c = d.Repro_datagen.Tpch.lineitem;
        c_fk = "l_orderkey";
      }
    in
    let pred_a =
      Predicate.Compare (Predicate.Gt, "c_acctbal", Value.Float 8000.0)
    in
    let prepared = Csdl.Chain.prepare_opt ~theta:0.001 tables in
    let synopsis = Csdl.Chain.draw prepared prng in
    Test.make ~name:"table9/chain-estimate"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Csdl.Chain.estimate ~pred_a prepared synopsis)))
  in
  [
    pair_estimate_test ~name:"table4/csdl-1-diff-small-jvd" ~query_name:"Q1a1"
      ~spec:(Csdl.Spec.csdl Csdl.Spec.L_one Csdl.Spec.L_diff) ~theta:0.001;
    pair_estimate_test ~name:"table5/csdl-t-diff-large-jvd" ~query_name:"Q1b3"
      ~spec:(Csdl.Spec.csdl Csdl.Spec.L_theta Csdl.Spec.L_diff) ~theta:0.001;
    pair_estimate_test ~name:"table6/cs2l-scaling-estimate" ~query_name:"Q1a1"
      ~spec:Csdl.Spec.cs2l ~theta:0.001;
    table7_test;
    table8_test;
    table9_test;
  ]

let run_bechamel config data =
  let open Bechamel in
  let tests = bechamel_tests config data in
  let test = Test.make_grouped ~name:"repro" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols instance raw in
  Format.printf "@.== Bechamel: online estimation cost per table ==@.";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let nanos =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%.0f ns" t
        | _ -> "n/a"
      in
      rows := [ name; nanos ] :: !rows)
    analyzed;
  let rows = List.sort compare !rows in
  Render.print_table ~title:"per-call estimation time"
    ~header:[ "benchmark"; "time/call" ] ~rows ()

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let options = parse_options () in
  (* --smoke: a CI-sized deterministic grid — Tables IV/V/VI only, small
     scale, no bechamel/ablations, measured timings on stderr. *)
  let options =
    if options.smoke then
      {
        options with
        tables = List.filter (wants options) [ 4; 5; 6 ];
        skip_bechamel = true;
        skip_ablations = true;
      }
    else options
  in
  let obs =
    match options.trace with
    | None -> Obs.null
    | Some file -> Obs.create ~sink:(Repro_obs.Trace.file file) ()
  in
  (* Pre-declare the cascade counter so the metrics dump always carries it
     — a trace with zero downgrades is then explicit, not absent. *)
  Obs.count obs "estimate.downgrades.total" 0;
  let prov =
    match options.bench_json with
    | None -> Provenance.null
    | Some _ -> Provenance.create ()
  in
  let config =
    let base = Config.from_env () in
    let base =
      if options.smoke then
        { base with Config.imdb_scale = 0.2; runs = 6; prefix_count = 20 }
      else if options.quick then
        { base with Config.imdb_scale = 0.2; runs = 5; prefix_count = 30 }
      else base
    in
    let base =
      match options.jobs with
      | Some jobs -> { base with Config.jobs = jobs }
      | None -> base
    in
    { base with Config.obs = obs; prov }
  in
  Format.eprintf "repro bench: %a@." Config.pp config;
  let timed label f = timed ~obs label f in
  let data =
    timed "generate mini-IMDB" (fun () ->
        Repro_datagen.Imdb.generate ~scale:config.Config.imdb_scale
          ~seed:config.Config.seed ())
  in
  let need_two_table = List.exists (wants options) [ 4; 5; 6 ] in
  let two_table_results =
    if need_two_table then
      Some (timed "two-table experiment" (fun () -> Exp_two_table.run config data))
    else None
  in
  Option.iter
    (fun results ->
      if wants options 4 then Exp_two_table.print_table4 config results;
      if wants options 5 then Exp_two_table.print_table5 config results;
      if wants options 6 then Exp_two_table.print_table6 config results)
    two_table_results;
  if wants options 7 then
    timed "prefix sweep" (fun () -> Table7.run config data)
    |> List.iter Table7.print;
  if wants options 8 then
    timed "skewed TPC-H" (fun () -> Table8.run config) |> Table8.print;
  if wants options 9 then
    timed "chain joins" (fun () -> Table9.run config) |> Table9.print;
  Option.iter
    (fun results ->
      let summaries = Timing.run config results in
      (* measured wall times are nondeterministic — keep them off the
         byte-comparable stdout stream in smoke mode *)
      if options.smoke then Timing.print ~ppf:Format.err_formatter summaries
      else Timing.print summaries)
    two_table_results;
  if not options.skip_ablations then begin
    timed "related-work comparison" (fun () -> Baseline_table.run config data)
    |> Baseline_table.print;
    timed "star joins" (fun () -> Star_bench.run config) |> Star_bench.print;
    timed "4-table chains" (fun () -> Chain4_bench.run config)
    |> Chain4_bench.print;
    timed "ablations" (fun () -> Ablation.run_all config data)
  end;
  if not options.skip_bechamel then run_bechamel config data;
  (* Provenance artifact: every record the runners collected, summarised
     per (experiment, variant), to the --bench-json path. The artifact
     name is the basename minus the conventional BENCH_/.json affixes, so
     BENCH_baseline.json is named "baseline". *)
  Option.iter
    (fun path ->
      let name =
        let base = Filename.basename path in
        let base = Filename.remove_extension base in
        if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
          String.sub base 6 (String.length base - 6)
        else base
      in
      let artifact = Provenance.artifact ~name (Provenance.records prov) in
      Provenance.write ~path artifact;
      Format.eprintf "[provenance: %d records -> %s]@."
        (List.length artifact.Provenance.a_records)
        path)
    options.bench_json;
  (* End-of-run observability export: Prometheus snapshot to stderr (never
     stdout — tables must stay byte-comparable), metrics dump + span file
     closed last. *)
  Option.iter
    (fun snapshot ->
      Format.eprintf "== metrics snapshot ==@.%s@." snapshot)
    (Obs.prometheus obs);
  Obs.close obs
