#!/bin/sh
# Shard-determinism gate: the sharded synopsis pipeline must be invisible
# in the numbers. Build the same store at --shards 1/4/8 and require
# (1) `synopsis-build` stdout byte-identical across shard counts,
# (2) `repro_cli batch` answers over each store byte-identical,
# (3) an insert+delete `synopsis-delta` round-trip to produce batch
#     answers byte-identical to a from-scratch rebuild on the post-delta
#     CSVs, and
# (4) the sharded build to emit a "synopsis-build" provenance record.
# Run from the bench build directory by the @shard-smoke alias; on a cmp
# failure the shard-*.txt outputs are what CI uploads as the diff.
set -eu

CLI=../bin/repro_cli.exe

# non-key join columns on both sides (every k repeats) so the estimator
# never swaps orientation, and a jvd far above the variant-selection
# threshold so base and post-delta data resolve to the same spec — the
# preconditions for delta-vs-rebuild byte-identity stated in
# docs/architecture.md
{
  echo k,attr
  i=0
  while [ $i -lt 200 ]; do
    echo "$((i % 20)),$((i % 7))"
    i=$((i + 1))
  done
} > shard-left.csv

{
  echo k,attr
  i=0
  while [ $i -lt 140 ]; do
    echo "$((i % 14)),$((i % 5))"
    i=$((i + 1))
  done
} > shard-right.csv

awk 'BEGIN {
  for (i = 0; i < 20; i++)
    printf "attr < %d ;; attr > %d\n", (i % 7) + 1, i % 3
}' > shard-queries.txt

# ---- phase 1: shard-count invariance ----

for K in 1 4 8; do
  $CLI synopsis-build "g=shard-left.csv:k,shard-right.csv:k" \
    --theta 0.5 --seed 11 --shards "$K" --jobs 2 \
    --store "shard-syn-$K.bin" --bench-json "shard-prov-$K.json" \
    2> /dev/null \
    | sed "s/shard-syn-$K\.bin/STORE/" > "shard-build-$K.txt"
  $CLI batch g --store "shard-syn-$K.bin" --queries shard-queries.txt \
    > "shard-batch-$K.txt"
done

# stdout of the build and of the 20 batch estimates must not depend on K
cmp shard-build-1.txt shard-build-4.txt
cmp shard-build-1.txt shard-build-8.txt
cmp shard-batch-1.txt shard-batch-4.txt
cmp shard-batch-1.txt shard-batch-8.txt

# sharded builds carry offline provenance
grep -q '"experiment": "synopsis-build"' shard-prov-4.json

# ---- phase 2: delta round-trip vs from-scratch rebuild ----

{
  echo k,attr
  echo 3,1
  echo 21,2
  echo 7,0
} > shard-ins-left.csv

{
  echo k,attr
  echo 3,1
  echo 33,4
} > shard-ins-right.csv

cp shard-syn-4.bin shard-syn-delta.bin
$CLI synopsis-delta g --store shard-syn-delta.bin \
  --insert-left shard-ins-left.csv --delete-left 0,13,57 \
  --insert-right shard-ins-right.csv --delete-right 5,28 \
  --out-left shard-delta-left.csv --out-right shard-delta-right.csv \
  > shard-delta.txt 2> /dev/null
grep -q 'applied delta to g' shard-delta.txt

$CLI batch g --store shard-syn-delta.bin --queries shard-queries.txt \
  > shard-batch-delta.txt

# same key => same keyed PRNG stream, so a fresh build over the
# post-delta CSVs must redraw the exact synopsis the delta maintained
$CLI synopsis-build "g=shard-delta-left.csv:k,shard-delta-right.csv:k" \
  --theta 0.5 --seed 11 --shards 4 --store shard-syn-fresh.bin \
  > /dev/null 2>&1
$CLI batch g --store shard-syn-fresh.bin --queries shard-queries.txt \
  > shard-batch-fresh.txt

cmp shard-batch-delta.txt shard-batch-fresh.txt
# same shard count, tables, stream and budget: the maintained store
# file itself must match the fresh rebuild byte for byte
cmp shard-syn-delta.bin shard-syn-fresh.bin

# the maintained store must also be invariant to how it is re-sharded:
# delta again with pure deletes, at the stored shard count, and compare
# against a monolithic rebuild
$CLI synopsis-delta g --store shard-syn-delta.bin --delete-left 4 \
  --out-left shard-delta-left.csv --out-right shard-delta-right.csv \
  > /dev/null 2>&1
$CLI batch g --store shard-syn-delta.bin --queries shard-queries.txt \
  > shard-batch-delta2.txt
$CLI synopsis-build "g=shard-delta-left.csv:k,shard-delta-right.csv:k" \
  --theta 0.5 --seed 11 --shards 1 --store shard-syn-fresh1.bin \
  > /dev/null 2>&1
$CLI batch g --store shard-syn-fresh1.bin --queries shard-queries.txt \
  > shard-batch-fresh1.txt
cmp shard-batch-delta2.txt shard-batch-fresh1.txt

echo "shard smoke passed"
