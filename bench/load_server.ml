(* Liveness test for the estimation daemon: hammer a real TCP server with
   thousands of single-query connections while the synopsis cache churns
   and chaos corrupts a third of the loads, then prove four things from
   the outside:

   1. zero crashes or hangs — every connection gets exactly one reply;
   2. every request ends in exactly one of {answered, degraded-with-trace,
      shed, deadline-exceeded}, and the server's own [server.outcome]
      counters sum to the request count (client-side tallies must agree
      with the registry, class by class);
   3. tail latency stays bounded (p99 under 2s on loopback) even with
      fault injection on;
   4. an overloaded server sheds explicitly (phase B: one worker held
      hostage by a mute client, a tiny queue, a burst of connects — the
      displaced connections must be told "shed", not time out);
   5. telemetry ties out: every reply echoes the client's request ID
      byte-exactly, every ID appears exactly once in the access log with
      zero orphans on either side, log outcomes agree with client
      tallies and registry counters, and the [slo] verb reports a live
      window. Under overload, shed connections get server-assigned IDs
      that the log still accounts for one-to-one.

   The daemon runs in-process (its own accept domain + worker domains)
   but is only ever spoken to over the socket, like any client. *)

open Repro_relation
module Clock = Repro_util.Clock
module Pool = Repro_util.Pool
module Prng = Repro_util.Prng
module Obs = Repro_obs.Obs
module Metrics = Repro_obs.Metrics
module Access_log = Repro_obs.Access_log
module Request_ctx = Repro_obs.Request_ctx
module Engine = Repro_server.Engine
module Server = Repro_server.Server
module Client = Repro_server.Client
module Protocol = Repro_server.Protocol

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then Printf.printf "ok: %s\n%!" msg
      else begin
        incr failures;
        Printf.printf "FAIL: %s\n%!" msg
      end)
    fmt

(* ---------------- fixture: dataset + synopsis store ---------------- *)

let build_store ~dir ~seed =
  let d = Repro_datagen.Imdb.generate ~scale:0.05 ~seed () in
  let write name table =
    let path = Filename.concat dir (name ^ ".csv") in
    Csv_io.write path table;
    path
  in
  let title = write "title" d.Repro_datagen.Imdb.title in
  let pairs =
    [
      ("mc-t", write "movie_companies" d.Repro_datagen.Imdb.movie_companies);
      ("mk-t", write "movie_keyword" d.Repro_datagen.Imdb.movie_keyword);
      ("mi-t", write "movie_info_idx" d.Repro_datagen.Imdb.movie_info_idx);
      ("ci-t", write "cast_info" d.Repro_datagen.Imdb.cast_info);
      ("at-t", write "aka_title" d.Repro_datagen.Imdb.aka_title);
      ("mc2-t", write "movie_companies2" d.Repro_datagen.Imdb.movie_companies);
    ]
  in
  let store = Csdl.Store.create () in
  List.iter
    (fun (key, left) ->
      let table_a = Csv_io.read_auto left in
      let table_b = Csv_io.read_auto title in
      let profile = Csdl.Profile.of_tables table_a "movie_id" table_b "id" in
      let estimator = Csdl.Opt.prepare ~theta:0.02 profile in
      let prng = Prng.create_keyed ~seed (Printf.sprintf "synopsis/%s" key) in
      let synopsis = Csdl.Estimator.draw estimator prng in
      Csdl.Store.add ~prng_key:(Printf.sprintf "%d:synopsis/%s" seed key)
        store ~key ~table_a:left ~table_b:title estimator synopsis)
    pairs;
  let path = Filename.concat dir "load-test-store.bin" in
  Csdl.Store.save store path;
  (path, List.map fst pairs)

(* Base tables stay resident across store decodes, as they would in a real
   deployment — the repeated cost under churn is the decode, not the CSV
   parse. *)
let memoized_resolver () =
  let cache = Hashtbl.create 8 in
  let mutex = Mutex.create () in
  fun name ->
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        match Hashtbl.find_opt cache name with
        | Some t -> t
        | None ->
            let t = Csv_io.read_auto name in
            Hashtbl.replace cache name t;
            t)

let counter_value obs ?labels name =
  match Obs.registry obs with
  | None -> 0
  | Some registry -> Metrics.Counter.value (Metrics.Registry.counter registry ?labels name)

(* ---------------- phase A: throughput + chaos + churn ---------------- *)

let preds =
  [|
    "";
    "production_year > 1980";
    "kind_id <= 3";
    "production_year >= 1950 AND kind_id <= 5";
  |]

let run_one_query ~port ~keys i =
  let key = List.nth keys (i mod List.length keys) in
  let pred_b = preds.(i mod Array.length preds) in
  (* every 97th request carries an impossible budget: the deadline path
     must fire deterministically, not only under incidental slowness *)
  let deadline_s = if i mod 97 = 0 then Some 1e-6 else None in
  (* every request carries a client-chosen ID; the reply must echo it
     byte-exactly and the access log must account for it exactly once *)
  let rid = Printf.sprintf "lq-%05d" i in
  let start = Clock.wall () in
  let c = Client.connect ~timeout_s:30.0 ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let reply =
        Client.estimate_full c ~id:rid ?deadline_s
          ?pred_b:(if pred_b = "" then None else Some pred_b)
          ~key ()
      in
      let elapsed = Clock.wall () -. start in
      match reply with
      | Ok (echoed, r) ->
          if echoed <> Some rid then
            failwith
              (Printf.sprintf "query %d: sent id %s, reply echoed %s" i rid
                 (Option.value ~default:"<none>" echoed));
          (Protocol.reply_class r, elapsed, rid)
      | Error e -> failwith (Printf.sprintf "query %d: bad reply: %s" i e))

let phase_a ~n ~chaos ~client_jobs ~store_path ~resolve_table ~dir =
  Printf.printf "== phase A: %d queries, chaos %g, cache churn ==\n%!" n chaos;
  let obs = Obs.create () in
  let log_path = Filename.concat dir "phase-a-access.jsonl" in
  let access_log = Access_log.create ~path:log_path ~sleep:Clock.sleepf in
  let engine_config =
    { Engine.default_config with cache_capacity = 2; chaos; seed = 42 }
  in
  let engine =
    match
      Engine.create ~obs engine_config ~resolve_table ~store_path
    with
    | Ok e -> e
    | Error fault ->
        Printf.eprintf "store unreadable: %s\n" (Csdl.Fault.error_to_string fault);
        exit 1
  in
  let keys = Engine.keys engine in
  let config =
    {
      (Server.default_config ~port:0) with
      jobs = 4;
      queue_capacity = 256;
      default_deadline_s = 5.0;
      io_timeout_s = 10.0;
    }
  in
  let srv = Server.create ~obs ~access_log config engine in
  let port = Server.port srv in
  let server_domain = Domain.spawn (fun () -> Server.serve srv) in
  let results =
    Pool.map_array ~jobs:client_jobs
      (fun i -> run_one_query ~port ~keys i)
      (Array.init n Fun.id)
  in
  (* the rolling SLO window must be live while the server still serves *)
  let slo_line =
    let c = Client.connect ~timeout_s:30.0 ~host:"127.0.0.1" ~port () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Client.raw c "slo")
  in
  Server.stop srv;
  Domain.join server_domain;
  Access_log.close access_log;
  let tally = Hashtbl.create 4 in
  Array.iter
    (fun (cls, _, _) ->
      Hashtbl.replace tally cls (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
    results;
  let count cls = Option.value ~default:0 (Hashtbl.find_opt tally cls) in
  let latencies = Array.map (fun (_, l, _) -> l) results in
  Array.sort compare latencies;
  let p99 = latencies.(min (n - 1) (n * 99 / 100)) in
  let forced = (n + 96) / 97 in
  Printf.printf
    "answered %d, degraded %d, deadline_exceeded %d, shed %d; p99 %.4fs\n%!"
    (count "answered") (count "degraded") (count "deadline_exceeded")
    (count "shed") p99;
  check (Array.length results = n) "all %d queries got exactly one reply" n;
  check
    (Hashtbl.fold (fun cls _ acc -> acc
       && List.mem cls [ "answered"; "degraded"; "deadline_exceeded"; "shed" ])
       tally true)
    "every reply is answered/degraded/deadline_exceeded/shed";
  check (count "answered" > 0) "some requests answered on the full CSDL path";
  check (count "degraded" > 0) "chaos produced degraded-with-trace replies";
  check
    (count "deadline_exceeded" >= forced)
    "all %d impossible-budget requests hit the deadline path" forced;
  check (count "shed" = 0) "no shedding with an adequate queue";
  (* a real hang would sit at the 10s IO / 30s client timeout, far above
     this; the slack below it absorbs CPU contention between the client
     and server domains on small CI machines *)
  check (p99 < 5.0) "p99 latency %.4fs bounded under 5s" p99;
  (* the server's own accounting must agree with what clients saw *)
  let total = counter_value obs "server.requests.total" in
  check (total = n) "server counted %d requests (saw %d)" n total;
  let outcome cls = counter_value obs ~labels:[ ("class", cls) ] "server.outcome" in
  List.iter
    (fun cls ->
      check
        (outcome cls = count cls)
        "server.outcome{class=%s} = %d matches client tally %d" cls
        (outcome cls) (count cls))
    [ "answered"; "degraded"; "deadline_exceeded"; "shed" ];
  check
    (List.fold_left (fun acc cls -> acc + outcome cls) 0
       [ "answered"; "degraded"; "deadline_exceeded"; "shed" ]
    = total)
    "outcome classes sum to the request count";
  (* --- telemetry reconciliation: replies <-> access log <-> registry --- *)
  let has sub s = Csdl.Fault.contains_substring s sub in
  check
    (has "ok window=" slo_line && has "p99=" slo_line && has "drift=" slo_line)
    "slo verb reports a live window (%s)" slo_line;
  let records =
    match Access_log.read_file log_path with
    | Ok rs -> rs
    | Error e ->
        incr failures;
        Printf.printf "FAIL: access log unreadable: %s\n%!" e;
        []
  in
  let est_records =
    List.filter (fun r -> r.Access_log.verb = "estimate") records
  in
  check
    (List.length est_records = n)
    "access log holds one estimate record per query (%d of %d)"
    (List.length est_records) n;
  check
    (List.length records = n + 1)
    "no stray records beyond the %d estimates and one slo probe (%d)" n
    (List.length records);
  let logged = Hashtbl.create n in
  let dups = ref 0 and orphan_records = ref 0 in
  let sent = Hashtbl.create n in
  Array.iter (fun (_, _, rid) -> Hashtbl.replace sent rid ()) results;
  List.iter
    (fun r ->
      let id = r.Access_log.id in
      if Hashtbl.mem logged id then incr dups;
      Hashtbl.replace logged id ();
      if not (Hashtbl.mem sent id) then incr orphan_records)
    est_records;
  let unlogged =
    Array.fold_left
      (fun acc (_, _, rid) -> if Hashtbl.mem logged rid then acc else acc + 1)
      0 results
  in
  check (!dups = 0) "request IDs appear at most once in the log (%d dups)" !dups;
  check
    (!orphan_records = 0)
    "zero log records without a matching reply (%d orphans)" !orphan_records;
  check (unlogged = 0) "zero replies without a log record (%d missing)" unlogged;
  List.iter
    (fun cls ->
      let in_log =
        List.length
          (List.filter (fun r -> r.Access_log.outcome = cls) est_records)
      in
      check
        (in_log = count cls)
        "access-log outcome %s = %d matches client tally %d" cls in_log
        (count cls))
    [ "answered"; "degraded"; "deadline_exceeded"; "shed" ];
  let tight_budget =
    List.length
      (List.filter (fun r -> r.Access_log.budget_s < 1e-3) est_records)
  in
  check
    (tight_budget = forced)
    "log shows the %d impossible budgets as granted (%d)" forced tight_budget;
  check
    (List.for_all
       (fun r ->
         Float.is_finite r.Access_log.wall_s && r.Access_log.wall_s >= 0.0)
       records)
    "every record carries a finite non-negative wall time";
  check
    (List.for_all
       (fun r ->
         r.Access_log.verb <> "estimate"
         || List.mem r.Access_log.cache [ "hit"; "miss" ])
       records)
    "every estimate record says hit or miss";
  let stats = Engine.cache_stats engine in
  check
    (stats.Csdl.Synopsis_cache.s_evictions > 0)
    "cache churned (%d evictions, %d misses)"
    stats.Csdl.Synopsis_cache.s_evictions stats.Csdl.Synopsis_cache.s_misses;
  Printf.printf
    "loads %d, chaos fail %d, chaos corrupt %d, singleflight shared %d, breaker trips %d\n%!"
    (counter_value obs "server.loads.total")
    (counter_value obs ~labels:[ ("mode", "fail") ] "server.chaos.injected")
    (counter_value obs ~labels:[ ("mode", "corrupt") ] "server.chaos.injected")
    (counter_value obs "server.singleflight.shared")
    (counter_value obs "server.breaker.rejected")

(* ---------------- phase B: forced overload, explicit shedding -------- *)

let phase_b ~store_path ~resolve_table ~dir =
  Printf.printf "== phase B: 1 worker, queue of 2, burst of 30 ==\n%!";
  let obs = Obs.create () in
  let log_path = Filename.concat dir "phase-b-access.jsonl" in
  let access_log = Access_log.create ~path:log_path ~sleep:Clock.sleepf in
  let engine =
    match
      Engine.create ~obs Engine.default_config ~resolve_table ~store_path
    with
    | Ok e -> e
    | Error fault ->
        Printf.eprintf "store unreadable: %s\n" (Csdl.Fault.error_to_string fault);
        exit 1
  in
  let key = List.hd (Engine.keys engine) in
  let config =
    {
      (Server.default_config ~port:0) with
      jobs = 1;
      queue_capacity = 2;
      queue_policy = Repro_server.Admission.Drop_oldest;
      default_deadline_s = 5.0;
      io_timeout_s = 0.6;
    }
  in
  let srv = Server.create ~obs ~access_log config engine in
  let port = Server.port srv in
  let server_domain = Domain.spawn (fun () -> Server.serve srv) in
  (* a mute client: the single worker blocks reading it until the IO
     timeout, so the queue must absorb — and then shed — the burst *)
  let hostage = Client.connect ~host:"127.0.0.1" ~port () in
  Clock.sleepf 0.1;
  let burst = 30 in
  (* no client ID this time: every reply must carry a server-assigned
     one — sheds included, where the request line is never even read *)
  let results =
    Pool.map_array ~jobs:16
      (fun i ->
        let c = Client.connect ~timeout_s:30.0 ~host:"127.0.0.1" ~port () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.estimate_full c ~key () with
            | Ok (echoed, r) -> (Protocol.reply_class r, echoed)
            | Error e -> failwith (Printf.sprintf "burst %d: bad reply: %s" i e)))
      (Array.init burst Fun.id)
  in
  Client.close hostage;
  Server.stop srv;
  Domain.join server_domain;
  Access_log.close access_log;
  let count cls =
    Array.fold_left
      (fun acc (c, _) -> if c = cls then acc + 1 else acc)
      0 results
  in
  Printf.printf "answered %d, shed %d\n%!" (count "answered") (count "shed");
  check (Array.length results = burst) "all %d burst connections replied" burst;
  check (count "shed" > 0) "overload shed explicitly (%d shed)" (count "shed");
  check
    (count "answered" + count "shed" + count "degraded"
     + count "deadline_exceeded"
    = burst)
    "burst outcomes partition the %d connections" burst;
  let outcome cls = counter_value obs ~labels:[ ("class", cls) ] "server.outcome" in
  check
    (outcome "shed" = count "shed")
    "server.outcome{class=shed} = %d matches client tally %d" (outcome "shed")
    (count "shed");
  check
    (counter_value obs "server.requests.total"
    = List.fold_left (fun acc cls -> acc + outcome cls) 0
        [ "answered"; "degraded"; "deadline_exceeded"; "shed" ])
    "outcome classes sum to the request count under overload";
  check
    (Array.for_all
       (fun (_, echoed) ->
         match echoed with
         | Some id -> Request_ctx.is_valid_id id
         | None -> false)
       results)
    "every burst reply carries a valid server-assigned ID";
  let records =
    match Access_log.read_file log_path with
    | Ok rs -> rs
    | Error e ->
        incr failures;
        Printf.printf "FAIL: access log unreadable: %s\n%!" e;
        []
  in
  let shed_records =
    List.length
      (List.filter (fun r -> r.Access_log.outcome = "shed") records)
  in
  check
    (shed_records = count "shed")
    "access log holds %d shed records matching the %d shed replies"
    shed_records (count "shed");
  let logged = Hashtbl.create burst in
  List.iter (fun r -> Hashtbl.replace logged r.Access_log.id ()) records;
  check
    (Hashtbl.length logged = List.length records)
    "server-assigned IDs are unique across the log";
  let unlogged =
    Array.fold_left
      (fun acc (_, echoed) ->
        match echoed with
        | Some id when Hashtbl.mem logged id -> acc
        | _ -> acc + 1)
      0 results
  in
  check
    (unlogged = 0)
    "every echoed ID has a matching log record (%d missing)" unlogged

(* ---------------- driver ---------------- *)

let () =
  let n = ref 5000 in
  let chaos = ref 0.3 in
  let client_jobs = ref 8 in
  Arg.parse
    [
      ("--queries", Arg.Set_int n, "total phase-A queries (default 5000)");
      ("--chaos", Arg.Set_float chaos, "fraction of loads corrupted (default 0.3)");
      ("--client-jobs", Arg.Set_int client_jobs, "concurrent client domains (default 8)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "load_server [--queries N] [--chaos F] [--client-jobs N]";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir = Filename.temp_file "load-server" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let store_path, _keys = build_store ~dir ~seed:3 in
  let resolve_table = memoized_resolver () in
  phase_a ~n:!n ~chaos:!chaos ~client_jobs:!client_jobs ~store_path
    ~resolve_table ~dir;
  phase_b ~store_path ~resolve_table ~dir;
  if !failures > 0 then begin
    Printf.printf "%d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "load test passed"
