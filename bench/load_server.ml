(* Liveness test for the estimation daemon: hammer a real TCP server with
   thousands of single-query connections while the synopsis cache churns
   and chaos corrupts a third of the loads, then prove four things from
   the outside:

   1. zero crashes or hangs — every connection gets exactly one reply;
   2. every request ends in exactly one of {answered, degraded-with-trace,
      shed, deadline-exceeded}, and the server's own [server.outcome]
      counters sum to the request count (client-side tallies must agree
      with the registry, class by class);
   3. tail latency stays bounded (p99 under 2s on loopback) even with
      fault injection on;
   4. an overloaded server sheds explicitly (phase B: one worker held
      hostage by a mute client, a tiny queue, a burst of connects — the
      displaced connections must be told "shed", not time out).

   The daemon runs in-process (its own accept domain + worker domains)
   but is only ever spoken to over the socket, like any client. *)

open Repro_relation
module Clock = Repro_util.Clock
module Pool = Repro_util.Pool
module Prng = Repro_util.Prng
module Obs = Repro_obs.Obs
module Metrics = Repro_obs.Metrics
module Engine = Repro_server.Engine
module Server = Repro_server.Server
module Client = Repro_server.Client
module Protocol = Repro_server.Protocol

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then Printf.printf "ok: %s\n%!" msg
      else begin
        incr failures;
        Printf.printf "FAIL: %s\n%!" msg
      end)
    fmt

(* ---------------- fixture: dataset + synopsis store ---------------- *)

let build_store ~dir ~seed =
  let d = Repro_datagen.Imdb.generate ~scale:0.05 ~seed () in
  let write name table =
    let path = Filename.concat dir (name ^ ".csv") in
    Csv_io.write path table;
    path
  in
  let title = write "title" d.Repro_datagen.Imdb.title in
  let pairs =
    [
      ("mc-t", write "movie_companies" d.Repro_datagen.Imdb.movie_companies);
      ("mk-t", write "movie_keyword" d.Repro_datagen.Imdb.movie_keyword);
      ("mi-t", write "movie_info_idx" d.Repro_datagen.Imdb.movie_info_idx);
      ("ci-t", write "cast_info" d.Repro_datagen.Imdb.cast_info);
      ("at-t", write "aka_title" d.Repro_datagen.Imdb.aka_title);
      ("mc2-t", write "movie_companies2" d.Repro_datagen.Imdb.movie_companies);
    ]
  in
  let store = Csdl.Store.create () in
  List.iter
    (fun (key, left) ->
      let table_a = Csv_io.read_auto left in
      let table_b = Csv_io.read_auto title in
      let profile = Csdl.Profile.of_tables table_a "movie_id" table_b "id" in
      let estimator = Csdl.Opt.prepare ~theta:0.02 profile in
      let prng = Prng.create_keyed ~seed (Printf.sprintf "synopsis/%s" key) in
      let synopsis = Csdl.Estimator.draw estimator prng in
      Csdl.Store.add ~prng_key:(Printf.sprintf "%d:synopsis/%s" seed key)
        store ~key ~table_a:left ~table_b:title estimator synopsis)
    pairs;
  let path = Filename.concat dir "load-test-store.bin" in
  Csdl.Store.save store path;
  (path, List.map fst pairs)

(* Base tables stay resident across store decodes, as they would in a real
   deployment — the repeated cost under churn is the decode, not the CSV
   parse. *)
let memoized_resolver () =
  let cache = Hashtbl.create 8 in
  let mutex = Mutex.create () in
  fun name ->
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        match Hashtbl.find_opt cache name with
        | Some t -> t
        | None ->
            let t = Csv_io.read_auto name in
            Hashtbl.replace cache name t;
            t)

let counter_value obs ?labels name =
  match Obs.registry obs with
  | None -> 0
  | Some registry -> Metrics.Counter.value (Metrics.Registry.counter registry ?labels name)

(* ---------------- phase A: throughput + chaos + churn ---------------- *)

let preds =
  [|
    "";
    "production_year > 1980";
    "kind_id <= 3";
    "production_year >= 1950 AND kind_id <= 5";
  |]

let run_one_query ~port ~keys i =
  let key = List.nth keys (i mod List.length keys) in
  let pred_b = preds.(i mod Array.length preds) in
  (* every 97th request carries an impossible budget: the deadline path
     must fire deterministically, not only under incidental slowness *)
  let deadline_s = if i mod 97 = 0 then Some 1e-6 else None in
  let start = Clock.wall () in
  let c = Client.connect ~timeout_s:30.0 ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let reply =
        Client.estimate c ?deadline_s
          ?pred_b:(if pred_b = "" then None else Some pred_b)
          ~key ()
      in
      let elapsed = Clock.wall () -. start in
      match reply with
      | Ok r -> (Protocol.reply_class r, elapsed, i)
      | Error e -> failwith (Printf.sprintf "query %d: bad reply: %s" i e))

let phase_a ~n ~chaos ~client_jobs ~store_path ~resolve_table =
  Printf.printf "== phase A: %d queries, chaos %g, cache churn ==\n%!" n chaos;
  let obs = Obs.create () in
  let engine_config =
    { Engine.default_config with cache_capacity = 2; chaos; seed = 42 }
  in
  let engine =
    match
      Engine.create ~obs engine_config ~resolve_table ~store_path
    with
    | Ok e -> e
    | Error fault ->
        Printf.eprintf "store unreadable: %s\n" (Csdl.Fault.error_to_string fault);
        exit 1
  in
  let keys = Engine.keys engine in
  let config =
    {
      (Server.default_config ~port:0) with
      jobs = 4;
      queue_capacity = 256;
      default_deadline_s = 5.0;
      io_timeout_s = 10.0;
    }
  in
  let srv = Server.create ~obs config engine in
  let port = Server.port srv in
  let server_domain = Domain.spawn (fun () -> Server.serve srv) in
  let results =
    Pool.map_array ~jobs:client_jobs
      (fun i -> run_one_query ~port ~keys i)
      (Array.init n Fun.id)
  in
  Server.stop srv;
  Domain.join server_domain;
  let tally = Hashtbl.create 4 in
  Array.iter
    (fun (cls, _, _) ->
      Hashtbl.replace tally cls (1 + Option.value ~default:0 (Hashtbl.find_opt tally cls)))
    results;
  let count cls = Option.value ~default:0 (Hashtbl.find_opt tally cls) in
  let latencies = Array.map (fun (_, l, _) -> l) results in
  Array.sort compare latencies;
  let p99 = latencies.(min (n - 1) (n * 99 / 100)) in
  let forced = (n + 96) / 97 in
  Printf.printf
    "answered %d, degraded %d, deadline_exceeded %d, shed %d; p99 %.4fs\n%!"
    (count "answered") (count "degraded") (count "deadline_exceeded")
    (count "shed") p99;
  check (Array.length results = n) "all %d queries got exactly one reply" n;
  check
    (Hashtbl.fold (fun cls _ acc -> acc
       && List.mem cls [ "answered"; "degraded"; "deadline_exceeded"; "shed" ])
       tally true)
    "every reply is answered/degraded/deadline_exceeded/shed";
  check (count "answered" > 0) "some requests answered on the full CSDL path";
  check (count "degraded" > 0) "chaos produced degraded-with-trace replies";
  check
    (count "deadline_exceeded" >= forced)
    "all %d impossible-budget requests hit the deadline path" forced;
  check (count "shed" = 0) "no shedding with an adequate queue";
  (* a real hang would sit at the 10s IO / 30s client timeout, far above
     this; the slack below it absorbs CPU contention between the client
     and server domains on small CI machines *)
  check (p99 < 5.0) "p99 latency %.4fs bounded under 5s" p99;
  (* the server's own accounting must agree with what clients saw *)
  let total = counter_value obs "server.requests.total" in
  check (total = n) "server counted %d requests (saw %d)" n total;
  let outcome cls = counter_value obs ~labels:[ ("class", cls) ] "server.outcome" in
  List.iter
    (fun cls ->
      check
        (outcome cls = count cls)
        "server.outcome{class=%s} = %d matches client tally %d" cls
        (outcome cls) (count cls))
    [ "answered"; "degraded"; "deadline_exceeded"; "shed" ];
  check
    (List.fold_left (fun acc cls -> acc + outcome cls) 0
       [ "answered"; "degraded"; "deadline_exceeded"; "shed" ]
    = total)
    "outcome classes sum to the request count";
  let stats = Engine.cache_stats engine in
  check
    (stats.Csdl.Synopsis_cache.s_evictions > 0)
    "cache churned (%d evictions, %d misses)"
    stats.Csdl.Synopsis_cache.s_evictions stats.Csdl.Synopsis_cache.s_misses;
  Printf.printf
    "loads %d, chaos fail %d, chaos corrupt %d, singleflight shared %d, breaker trips %d\n%!"
    (counter_value obs "server.loads.total")
    (counter_value obs ~labels:[ ("mode", "fail") ] "server.chaos.injected")
    (counter_value obs ~labels:[ ("mode", "corrupt") ] "server.chaos.injected")
    (counter_value obs "server.singleflight.shared")
    (counter_value obs "server.breaker.rejected")

(* ---------------- phase B: forced overload, explicit shedding -------- *)

let phase_b ~store_path ~resolve_table =
  Printf.printf "== phase B: 1 worker, queue of 2, burst of 30 ==\n%!";
  let obs = Obs.create () in
  let engine =
    match
      Engine.create ~obs Engine.default_config ~resolve_table ~store_path
    with
    | Ok e -> e
    | Error fault ->
        Printf.eprintf "store unreadable: %s\n" (Csdl.Fault.error_to_string fault);
        exit 1
  in
  let key = List.hd (Engine.keys engine) in
  let config =
    {
      (Server.default_config ~port:0) with
      jobs = 1;
      queue_capacity = 2;
      queue_policy = Repro_server.Admission.Drop_oldest;
      default_deadline_s = 5.0;
      io_timeout_s = 0.6;
    }
  in
  let srv = Server.create ~obs config engine in
  let port = Server.port srv in
  let server_domain = Domain.spawn (fun () -> Server.serve srv) in
  (* a mute client: the single worker blocks reading it until the IO
     timeout, so the queue must absorb — and then shed — the burst *)
  let hostage = Client.connect ~host:"127.0.0.1" ~port () in
  Clock.sleepf 0.1;
  let burst = 30 in
  let results =
    Pool.map_array ~jobs:16
      (fun i ->
        let c = Client.connect ~timeout_s:30.0 ~host:"127.0.0.1" ~port () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.estimate c ~key () with
            | Ok r -> Protocol.reply_class r
            | Error e -> failwith (Printf.sprintf "burst %d: bad reply: %s" i e)))
      (Array.init burst Fun.id)
  in
  Client.close hostage;
  Server.stop srv;
  Domain.join server_domain;
  let count cls =
    Array.fold_left (fun acc c -> if c = cls then acc + 1 else acc) 0 results
  in
  Printf.printf "answered %d, shed %d\n%!" (count "answered") (count "shed");
  check (Array.length results = burst) "all %d burst connections replied" burst;
  check (count "shed" > 0) "overload shed explicitly (%d shed)" (count "shed");
  check
    (count "answered" + count "shed" + count "degraded"
     + count "deadline_exceeded"
    = burst)
    "burst outcomes partition the %d connections" burst;
  let outcome cls = counter_value obs ~labels:[ ("class", cls) ] "server.outcome" in
  check
    (outcome "shed" = count "shed")
    "server.outcome{class=shed} = %d matches client tally %d" (outcome "shed")
    (count "shed");
  check
    (counter_value obs "server.requests.total"
    = List.fold_left (fun acc cls -> acc + outcome cls) 0
        [ "answered"; "degraded"; "deadline_exceeded"; "shed" ])
    "outcome classes sum to the request count under overload"

(* ---------------- driver ---------------- *)

let () =
  let n = ref 5000 in
  let chaos = ref 0.3 in
  let client_jobs = ref 8 in
  Arg.parse
    [
      ("--queries", Arg.Set_int n, "total phase-A queries (default 5000)");
      ("--chaos", Arg.Set_float chaos, "fraction of loads corrupted (default 0.3)");
      ("--client-jobs", Arg.Set_int client_jobs, "concurrent client domains (default 8)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "load_server [--queries N] [--chaos F] [--client-jobs N]";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir = Filename.temp_file "load-server" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let store_path, _keys = build_store ~dir ~seed:3 in
  let resolve_table = memoized_resolver () in
  phase_a ~n:!n ~chaos:!chaos ~client_jobs:!client_jobs ~store_path
    ~resolve_table;
  phase_b ~store_path ~resolve_table;
  if !failures > 0 then begin
    Printf.printf "%d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "load test passed"
