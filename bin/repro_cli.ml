(* Command-line interface to the library: generate the paper's datasets as
   CSV files, inspect tables, and estimate join sizes over CSV inputs.

     repro_cli generate-imdb --scale 0.1 --out data/
     repro_cli generate-tpch --scale 0.1 --skew 2 --out data/
     repro_cli inspect data/title.csv --column id
     repro_cli estimate --left data/movie_companies.csv --left-col movie_id \
                        --right data/title.csv --right-col id \
                        --theta 0.01 --approach csdl-opt --runs 5 --exact *)

open Cmdliner
open Repro_relation
module Prng = Repro_util.Prng
module Pool = Repro_util.Pool
module Clock = Repro_util.Clock
module Obs = Repro_obs.Obs
module Report = Repro_obs.Report
module Provenance = Repro_benchlib.Provenance

let ensure_directory path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    failwith (path ^ " exists and is not a directory")

let write_table directory name table =
  let path = Filename.concat directory (name ^ ".csv") in
  Csv_io.write path table;
  Printf.printf "wrote %s (%d rows)\n%!" path (Table.cardinality table)

(* ---------------- shared arguments ---------------- *)

let scale_arg =
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"Scale factor.")

let out_arg =
  Arg.(
    value & opt string "data"
    & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created if absent).")

let seed_arg =
  Arg.(value & opt int 20200427 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

(* ---------------- generate-imdb ---------------- *)

let generate_imdb scale out seed =
  ensure_directory out;
  let d = Repro_datagen.Imdb.generate ~scale ~seed () in
  write_table out "title" d.Repro_datagen.Imdb.title;
  write_table out "aka_title" d.Repro_datagen.Imdb.aka_title;
  write_table out "movie_companies" d.Repro_datagen.Imdb.movie_companies;
  write_table out "movie_info_idx" d.Repro_datagen.Imdb.movie_info_idx;
  write_table out "movie_keyword" d.Repro_datagen.Imdb.movie_keyword;
  write_table out "keyword" d.Repro_datagen.Imdb.keyword;
  write_table out "cast_info" d.Repro_datagen.Imdb.cast_info;
  write_table out "company_type" d.Repro_datagen.Imdb.company_type;
  write_table out "info_type" d.Repro_datagen.Imdb.info_type

let generate_imdb_cmd =
  Cmd.v
    (Cmd.info "generate-imdb" ~doc:"Generate the synthetic mini-IMDB as CSV files.")
    Term.(const generate_imdb $ scale_arg $ out_arg $ seed_arg)

(* ---------------- generate-tpch ---------------- *)

let skew_arg =
  Arg.(value & opt float 2.0 & info [ "skew"; "z" ] ~docv:"Z" ~doc:"Zipf skew.")

let generate_tpch scale z out seed =
  ensure_directory out;
  let d = Repro_datagen.Tpch.generate ~scale ~z ~seed in
  write_table out "customer" d.Repro_datagen.Tpch.customer;
  write_table out "supplier" d.Repro_datagen.Tpch.supplier;
  write_table out "orders" d.Repro_datagen.Tpch.orders;
  write_table out "lineitem" d.Repro_datagen.Tpch.lineitem;
  write_table out "part" d.Repro_datagen.Tpch.part

let generate_tpch_cmd =
  Cmd.v
    (Cmd.info "generate-tpch"
       ~doc:"Generate a skewed TPC-H-shaped dataset as CSV files.")
    Term.(const generate_tpch $ scale_arg $ skew_arg $ out_arg $ seed_arg)

(* ---------------- inspect ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"CSV file.")

let column_arg =
  Arg.(
    value & opt (some string) None
    & info [ "column" ] ~docv:"NAME" ~doc:"Column to profile.")

let inspect file column =
  let table = Csv_io.read_auto file in
  Format.printf "%a@." (Table.pp_head ~limit:5) table;
  match column with
  | None -> ()
  | Some column ->
      let freq = Table.frequency_map table column in
      Printf.printf "column %s: %d distinct non-null values over %d rows\n"
        column (Value.Tbl.length freq) (Table.cardinality table);
      let top =
        Value.Tbl.fold (fun v c acc -> (v, c) :: acc) freq []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < 5)
      in
      List.iter
        (fun (v, c) -> Printf.printf "  %s: %d\n" (Value.to_string v) c)
        top

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a CSV table's head and a column profile.")
    Term.(const inspect $ file_arg $ column_arg)

(* ---------------- estimate ---------------- *)

type approach = Opt | Cs2l | Cs2 | Cso | Variant of Csdl.Spec.t

let approach_conv =
  let parse s =
    let level = function
      | "1" -> Ok Csdl.Spec.L_one
      | "t" | "theta" -> Ok Csdl.Spec.L_theta
      | "rt" | "sqrt" -> Ok Csdl.Spec.L_sqrt_theta
      | "diff" -> Ok Csdl.Spec.L_diff
      | other -> Error (`Msg ("unknown level: " ^ other))
    in
    match String.lowercase_ascii s with
    | "csdl-opt" | "opt" -> Ok Opt
    | "cs2l" -> Ok Cs2l
    | "cs2" -> Ok Cs2
    | "cso" -> Ok Cso
    | s -> (
        (* csdl:P,Q e.g. csdl:1,diff *)
        match String.split_on_char ':' s with
        | [ "csdl"; pq ] -> (
            match String.split_on_char ',' pq with
            | [ p; q ] -> (
                match (level p, level q) with
                | Ok p, Ok q -> Ok (Variant (Csdl.Spec.csdl p q))
                | Error e, _ | _, Error e -> Error e)
            | _ -> Error (`Msg "expected csdl:P,Q"))
        | _ -> Error (`Msg ("unknown approach: " ^ s)))
  in
  let print fmt = function
    | Opt -> Format.pp_print_string fmt "csdl-opt"
    | Cs2l -> Format.pp_print_string fmt "cs2l"
    | Cs2 -> Format.pp_print_string fmt "cs2"
    | Cso -> Format.pp_print_string fmt "cso"
    | Variant spec -> Format.pp_print_string fmt (Csdl.Spec.to_string spec)
  in
  Arg.conv (parse, print)

let left_arg =
  Arg.(required & opt (some file) None & info [ "left" ] ~docv:"CSV" ~doc:"Left table.")

let left_col_arg =
  Arg.(
    required & opt (some string) None
    & info [ "left-col" ] ~docv:"NAME" ~doc:"Left join column.")

let right_arg =
  Arg.(
    required & opt (some file) None & info [ "right" ] ~docv:"CSV" ~doc:"Right table.")

let right_col_arg =
  Arg.(
    required & opt (some string) None
    & info [ "right-col" ] ~docv:"NAME" ~doc:"Right join column.")

let theta_arg =
  Arg.(
    value & opt float 0.01
    & info [ "theta" ] ~docv:"T" ~doc:"Space budget ratio (0 < T <= 1).")

let approach_arg =
  Arg.(
    value & opt approach_conv Opt
    & info [ "approach" ] ~docv:"A"
        ~doc:
          "Estimator: csdl-opt, cs2l, cs2, cso, or csdl:P,Q with P,Q in \
           {1, t, rt, diff}.")

let runs_arg =
  Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Sampling runs.")

let exact_arg =
  Arg.(
    value & flag
    & info [ "exact" ] ~doc:"Also compute the exact join size and q-error.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the estimation runs (default 1; 0 = one per \
           available core). Each run draws from its own seed-keyed PRNG \
           stream, so results are identical at any $(docv).")

let guarded_arg =
  Arg.(
    value & flag
    & info [ "guarded" ]
        ~doc:
          "Use the fault-tolerant degradation cascade (CSDL variants, then \
           scaling, then the independence baseline) instead of a single \
           approach; prints the rung that answered and any downgrades.")

let predicate_conv =
  Arg.conv
    ( (fun s ->
        match Predicate_parser.parse s with
        | Ok p -> Ok p
        | Error e -> Error (`Msg e)),
      fun fmt p -> Format.pp_print_string fmt (Predicate.to_string p) )

let where_left_arg =
  Arg.(
    value & opt predicate_conv Predicate.True
    & info [ "where-left" ] ~docv:"COND"
        ~doc:
          "Selection on the left table, e.g. 'price > 99 AND name LIKE \
           \'The %\''.")

let where_right_arg =
  Arg.(
    value & opt predicate_conv Predicate.True
    & info [ "where-right" ] ~docv:"COND" ~doc:"Selection on the right table.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write observability output (JSONL spans plus a final metrics \
           dump) to $(docv) and a Prometheus-style snapshot to stderr. \
           Never changes estimates: instrumentation does not touch the \
           PRNG streams.")

let bench_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "bench-json" ] ~docv:"FILE"
        ~doc:
          "Write a versioned estimate-provenance artifact (one record per \
           run: variant, sample size, estimate, q-error, cascade rung, \
           timings) to $(docv), diffable with $(b,repro_cli bench diff). \
           Never changes estimates or stdout.")

(* One guarded run over its own keyed stream; results are printed by the
   caller in run order once every (possibly parallel) run has finished. *)
let guarded_run ~obs ~theta ~pred_left ~pred_right ~seed profile i =
  let prng = Prng.create_keyed ~seed (Printf.sprintf "estimate/run=%d" i) in
  Repro_robustness.Guarded.estimate ~obs ~pred_a:pred_left ~pred_b:pred_right
    ~theta profile prng

(* What one estimation run contributes to the provenance artifact, on top
   of its estimate: the cascade rung that answered (plain runs: ""), the
   downgrade count, the synopsis size in tuples (nan when the cascade
   hides it) and the run's timing. *)
type run_info = {
  r_value : float;
  r_rung : string;
  r_downgrades : int;
  r_sample_tuples : float;
  r_span : Clock.span;
  r_offline_wall : float;  (** draw wall time; nan when the cascade hides it *)
}

let estimate left left_col right right_col theta approach runs exact guarded
    jobs seed pred_left pred_right trace bench_json =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  let obs =
    match trace with
    | None -> Obs.null
    | Some file -> Obs.create ~sink:(Repro_obs.Trace.file file) ()
  in
  Obs.count obs "estimate.downgrades.total" 0;
  let table_a = Csv_io.read_auto left and table_b = Csv_io.read_auto right in
  let profile = Csdl.Profile.of_tables table_a left_col table_b right_col in
  Printf.printf "|A| = %d, |B| = %d, shared join values = %d, jvd = %.6f\n"
    profile.Csdl.Profile.a.Csdl.Profile.cardinality
    profile.Csdl.Profile.b.Csdl.Profile.cardinality
    (Array.length profile.Csdl.Profile.shared_values)
    profile.Csdl.Profile.jvd;
  if pred_left <> Predicate.True then
    Printf.printf "left selection: %s\n" (Predicate.to_string pred_left);
  if pred_right <> Predicate.True then
    Printf.printf "right selection: %s\n" (Predicate.to_string pred_right);
  let run_indices = Array.init runs (fun i -> i) in
  let run_results, variant =
    if guarded then begin
      Printf.printf
        "approach: guarded cascade (csdl:t,diff -> csdl:1,diff -> scaling -> \
         independent)\n";
      let outcomes =
        Pool.map_array ~obs ~jobs
          (fun i ->
            Clock.time (fun () ->
                guarded_run ~obs ~theta ~pred_left ~pred_right ~seed profile i))
          run_indices
      in
      ( Array.mapi
          (fun i (outcome, span) ->
            match outcome with
            | Error fault ->
                Printf.eprintf "error: %s\n" (Csdl.Fault.error_to_string fault);
                exit 1
            | Ok g ->
                Printf.printf "run %d: %.1f via %s%s\n" (i + 1)
                  g.Csdl.Estimator.value g.Csdl.Estimator.rung
                  (if g.Csdl.Estimator.clamped then " (clamped)" else "");
                List.iter
                  (fun d ->
                    Printf.printf "  downgraded: %s\n"
                      (Csdl.Fault.degradation_to_string d))
                  g.Csdl.Estimator.trace;
                {
                  r_value = g.Csdl.Estimator.value;
                  r_rung = g.Csdl.Estimator.rung;
                  r_downgrades = List.length g.Csdl.Estimator.trace;
                  r_sample_tuples = Float.nan;
                  r_span = span;
                  r_offline_wall = Float.nan;
                })
          outcomes,
        "guarded" )
    end
    else begin
      let estimator =
        match approach with
        | Opt -> Csdl.Opt.prepare ~theta profile
        | Cs2l -> Csdl.Estimator.prepare Csdl.Spec.cs2l ~theta profile
        | Cs2 -> Csdl.Estimator.prepare Csdl.Spec.cs2 ~theta profile
        | Cso -> Csdl.Estimator.prepare Csdl.Spec.cso ~theta profile
        | Variant spec -> Csdl.Estimator.prepare spec ~theta profile
      in
      let variant = Csdl.Spec.to_string (Csdl.Estimator.spec estimator) in
      Printf.printf "approach: %s (sampling the %s table first)\n" variant
        (if Csdl.Estimator.swapped estimator then "right" else "left");
      ( Pool.map_array ~obs ~jobs
          (fun i ->
            let prng =
              Prng.create_keyed ~seed (Printf.sprintf "estimate/run=%d" i)
            in
            (* draw + estimate is estimate_once unrolled — same PRNG
               stream, but the synopsis size and the offline/online time
               split become observable for provenance *)
            let synopsis, draw_span =
              Clock.time (fun () -> Csdl.Estimator.draw ~obs estimator prng)
            in
            let value, span =
              Clock.time (fun () ->
                  Csdl.Estimator.estimate ~obs ~pred_a:pred_left
                    ~pred_b:pred_right estimator synopsis)
            in
            {
              r_value = value;
              r_rung = "";
              r_downgrades = 0;
              r_sample_tuples =
                float_of_int (Csdl.Synopsis.size_tuples synopsis);
              r_span = span;
              r_offline_wall = draw_span.Clock.wall_seconds;
            })
          run_indices,
        variant )
    end
  in
  let estimates = Array.map (fun r -> r.r_value) run_results in
  let truth =
    if exact then
      Some
        (Join.pair_count
           (Join.filtered table_a left_col pred_left)
           (Join.filtered table_b right_col pred_right))
    else None
  in
  let median = Repro_util.Summary.median estimates in
  Printf.printf "median estimate over %d runs: %.1f\n" runs median;
  if runs >= 5 then begin
    let ci =
      Repro_stats.Bootstrap.median_interval (Prng.create (seed + 1)) estimates
    in
    Printf.printf "bootstrap 95%% CI on the median: [%.1f, %.1f]\n"
      ci.Repro_stats.Bootstrap.lower ci.Repro_stats.Bootstrap.upper
  end;
  Option.iter
    (fun truth ->
      Printf.printf "exact join size: %d (q-error %s)\n" truth
        (Repro_stats.Qerror.to_string
           (Repro_stats.Qerror.compute ~truth:(float_of_int truth)
              ~estimate:median)))
    truth;
  Option.iter
    (fun path ->
      let prov = Provenance.create () in
      let query =
        Printf.sprintf "%s-%s"
          (Filename.remove_extension (Filename.basename left))
          (Filename.remove_extension (Filename.basename right))
      in
      let truth_f =
        match truth with Some t -> float_of_int t | None -> Float.nan
      in
      Array.iter
        (fun r ->
          Provenance.add prov
            {
              Provenance.empty with
              Provenance.experiment = "estimate";
              query;
              variant;
              theta;
              jvd = profile.Csdl.Profile.jvd;
              sample_tuples = r.r_sample_tuples;
              truth = truth_f;
              estimate = r.r_value;
              qerror =
                (match truth with
                | Some t ->
                    Repro_stats.Qerror.compute ~truth:(float_of_int t)
                      ~estimate:r.r_value
                | None -> Float.nan);
              rung = r.r_rung;
              downgrades = r.r_downgrades;
              runs = 1;
              zero_runs = (if r.r_value = 0.0 then 1 else 0);
              wall_seconds = r.r_span.Clock.wall_seconds;
              cpu_seconds = r.r_span.Clock.cpu_seconds;
              offline_wall_seconds = r.r_offline_wall;
            })
        run_results;
      let name = Filename.remove_extension (Filename.basename path) in
      Provenance.write ~path
        (Provenance.artifact ~name (Provenance.records prov));
      Printf.eprintf "provenance: %d records -> %s\n" runs path)
    bench_json;
  Option.iter
    (fun snapshot -> Printf.eprintf "== metrics snapshot ==\n%s%!" snapshot)
    (Obs.prometheus obs);
  Obs.close obs

let estimate_cmd =
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate the equijoin size of two CSV tables.")
    Term.(
      const estimate $ left_arg $ left_col_arg $ right_arg $ right_col_arg
      $ theta_arg $ approach_arg $ runs_arg $ exact_arg $ guarded_arg
      $ jobs_arg $ seed_arg $ where_left_arg $ where_right_arg $ trace_arg
      $ bench_json_arg)

(* ---------------- metrics ---------------- *)

(* A self-contained exercise of the instrumented pipeline: run guarded
   estimates over a generated workload with a live context and print the
   Prometheus-style snapshot to stdout — the quickest way to see every
   metric the pipeline exports (and to scrape one in CI). *)
let metrics scale seed runs theta =
  let obs = Obs.create () in
  Obs.count obs "estimate.downgrades.total" 0;
  let d = Repro_datagen.Imdb.generate ~scale ~seed () in
  let queries = Repro_datagen.Job_workload.two_table_queries d in
  List.iter
    (fun (q : Repro_datagen.Job_workload.query) ->
      let profile =
        Csdl.Profile.of_tables q.Repro_datagen.Job_workload.a.Join.table
          q.Repro_datagen.Job_workload.a.Join.column
          q.Repro_datagen.Job_workload.b.Join.table
          q.Repro_datagen.Job_workload.b.Join.column
      in
      for i = 0 to runs - 1 do
        let prng =
          Prng.create_keyed ~seed
            (Printf.sprintf "metrics/%s/run=%d"
               q.Repro_datagen.Job_workload.name i)
        in
        match
          Repro_robustness.Guarded.estimate ~obs
            ~pred_a:q.Repro_datagen.Job_workload.a.Join.predicate
            ~pred_b:q.Repro_datagen.Job_workload.b.Join.predicate ~theta
            profile prng
        with
        | Ok _ -> ()
        | Error fault ->
            Printf.eprintf "error: %s\n" (Csdl.Fault.error_to_string fault);
            exit 1
      done)
    queries;
  Obs.set_build_info obs ~store_version:Csdl.Synopsis_store.version
    ~git:
      (Option.value ~default:"unknown" (Sys.getenv_opt "REPRO_GIT_DESCRIBE"));
  Obs.record_runtime obs;
  print_string (Option.value ~default:"" (Obs.prometheus obs))

let metrics_runs_arg =
  Arg.(
    value & opt int 2
    & info [ "runs" ] ~docv:"N" ~doc:"Guarded estimation runs per query.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Exercise the instrumented estimation pipeline on a generated \
          workload and print the Prometheus-style metrics snapshot.")
    Term.(const metrics $ scale_arg $ seed_arg $ metrics_runs_arg $ theta_arg)

(* ---------------- bakeoff ---------------- *)

let bakeoff scale seed runs thetas level jobs bench_json =
  let jobs = if jobs = 0 then Pool.default_jobs () else max 1 jobs in
  let prov =
    if Option.is_some bench_json then Provenance.create ()
    else Provenance.null
  in
  let config =
    {
      Repro_benchlib.Config.default with
      Repro_benchlib.Config.imdb_scale = scale;
      runs;
      seed;
      thetas;
      jobs;
      prov;
    }
  in
  Format.eprintf "repro bakeoff: %a level=%g@." Repro_benchlib.Config.pp
    config level;
  let d = Repro_datagen.Imdb.generate ~scale ~seed () in
  let result = Repro_benchlib.Bakeoff.run ~level ~thetas config d in
  Repro_benchlib.Bakeoff.print result;
  Option.iter
    (fun path ->
      Repro_benchlib.Bakeoff.record_cells prov result;
      let records = Provenance.records prov in
      let name = Filename.remove_extension (Filename.basename path) in
      Provenance.write ~path (Provenance.artifact ~name records);
      Printf.eprintf "provenance: %d records -> %s\n"
        (List.length records) path)
    bench_json

let bakeoff_thetas_arg =
  Arg.(
    value
    & opt (list float) [ 0.01 ]
    & info [ "thetas" ] ~docv:"T,..."
        ~doc:"Comma-separated sampling budgets to grid over.")

let bakeoff_runs_arg =
  Arg.(
    value & opt int 10
    & info [ "runs" ] ~docv:"N" ~doc:"Seeded repetitions per cell.")

let level_arg =
  Arg.(
    value & opt float 0.95
    & info [ "level" ] ~docv:"L"
        ~doc:"Confidence level for both CI kinds (in (0,1)).")

let bakeoff_cmd =
  Cmd.v
    (Cmd.info "bakeoff"
       ~doc:
         "Run every estimator (correlated sampling and all related-work \
          baselines) over the two-table query grid with confidence \
          intervals on each cell: a bootstrap CI on the median of the \
          seeded repetitions, plus the paper's analytic single-synopsis \
          CI for the correlated-sampling family. Reports per-estimator CI \
          coverage against the exact join sizes; $(b,--bench-json) writes \
          a version-2 provenance artifact gateable with $(b,bench diff \
          --min-ci-coverage). Stdout is byte-identical at any $(b,--jobs).")
    Term.(
      const bakeoff $ scale_arg $ seed_arg $ bakeoff_runs_arg
      $ bakeoff_thetas_arg $ level_arg $ jobs_arg $ bench_json_arg)

(* ---------------- synopsis-build / synopsis-estimate ---------------- *)

(* A join-graph spec: "key=left.csv:col,right.csv:col" *)
let parse_graph spec =
  match String.split_on_char '=' spec with
  | [ key; rest ] -> (
      match String.split_on_char ',' rest with
      | [ left; right ] -> (
          match
            (String.split_on_char ':' left, String.split_on_char ':' right)
          with
          | [ lf; lc ], [ rf; rc ] -> Ok (key, lf, lc, rf, rc)
          | _ -> Error (`Msg "expected key=left.csv:col,right.csv:col"))
      | _ -> Error (`Msg "expected key=left.csv:col,right.csv:col"))
  | _ -> Error (`Msg "expected key=left.csv:col,right.csv:col")

let graph_conv =
  Arg.conv
    ( parse_graph,
      fun fmt (key, lf, lc, rf, rc) ->
        Format.fprintf fmt "%s=%s:%s,%s:%s" key lf lc rf rc )

let graphs_arg =
  Arg.(
    non_empty & pos_all graph_conv []
    & info [] ~docv:"KEY=LEFT.csv:COL,RIGHT.csv:COL"
        ~doc:"Join graphs to build synopses for.")

let store_arg =
  Arg.(
    value & opt string "synopses.bin"
    & info [ "store" ] ~docv:"FILE" ~doc:"Synopsis store file.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition each synopsis into $(docv) deterministic shards of the \
           join-value hash space, draw them in parallel (see $(b,--jobs)) \
           and merge. Estimates and stdout are byte-identical at any \
           $(docv); the store persists one checksummed segment per shard.")

let synopsis_build graphs theta store seed shards jobs bench_json =
  if shards < 1 then begin
    Printf.eprintf "error: --shards must be >= 1\n";
    exit 2
  end;
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  let s = Csdl.Store.create () in
  let prov = Provenance.create () in
  List.iter
    (fun (key, lf, lc, rf, rc) ->
      let table_a = Csv_io.read_auto lf and table_b = Csv_io.read_auto rf in
      let profile = Csdl.Profile.of_tables table_a lc table_b rc in
      let estimator = Csdl.Opt.prepare ~theta profile in
      (* one keyed stream per graph: rebuilding any subset of graphs with
         the same seed redraws bit-identical synopses, independent of
         which other graphs are on the command line. The sharded build
         consumes the same 64-bit base the monolithic [Estimator.draw]
         would, so the merged synopsis is bit-identical at any --shards. *)
      let stream = Printf.sprintf "synopsis/%s" key in
      let prng = Prng.create_keyed ~seed stream in
      let synopsis, span =
        Clock.time (fun () ->
            Csdl.Synopsis_shard.merge
              (Csdl.Synopsis_shard.build ~jobs
                 ~base:(Csdl.Synopsis.base_of_prng prng)
                 ~profile:(Csdl.Estimator.profile estimator)
                 ~resolved:(Csdl.Estimator.resolved estimator)
                 ~shards ()))
      in
      Csdl.Store.add
        ~prng_key:(Printf.sprintf "%d:%s" seed stream)
        ~shards s ~key ~table_a:lf ~table_b:rf estimator synopsis;
      let expected = (Csdl.Estimator.resolved estimator).Csdl.Budget.expected_size in
      let tuples = float_of_int (Csdl.Synopsis.size_tuples synopsis) in
      Provenance.add prov
        {
          Provenance.empty with
          Provenance.experiment = "synopsis-build";
          query = key;
          variant = Csdl.Spec.to_string (Csdl.Estimator.spec estimator);
          theta;
          jvd = profile.Csdl.Profile.jvd;
          sample_tuples = tuples;
          truth = expected;
          estimate = tuples;
          qerror =
            (if expected > 0.0 && tuples > 0.0 then
               Float.max (tuples /. expected) (expected /. tuples)
             else Float.nan);
          rung = "offline";
          downgrades = 0;
          runs = 1;
          zero_runs = (if tuples = 0.0 then 1 else 0);
          wall_seconds = span.Clock.wall_seconds;
          cpu_seconds = span.Clock.cpu_seconds;
          offline_wall_seconds = span.Clock.wall_seconds;
        };
      Printf.printf "built %s: %s, %d sample tuples\n%!" key
        (Csdl.Spec.to_string (Csdl.Estimator.spec estimator))
        (Csdl.Synopsis.size_tuples synopsis))
    graphs;
  Csdl.Store.save s store;
  Printf.printf "saved %d synopses to %s (%d tuples total)\n"
    (List.length (Csdl.Store.keys s)) store (Csdl.Store.total_tuples s);
  Option.iter
    (fun path ->
      let name = Filename.remove_extension (Filename.basename path) in
      Provenance.write ~path
        (Provenance.artifact ~name (Provenance.records prov));
      Printf.eprintf "provenance: %d records -> %s\n"
        (List.length (Provenance.records prov)) path)
    bench_json

let synopsis_build_cmd =
  Cmd.v
    (Cmd.info "synopsis-build"
       ~doc:
         "Build CSDL-Opt synopses for a set of CSV join graphs and persist \
          them to a store file, optionally sharded (byte-identical \
          estimates at any shard count).")
    Term.(
      const synopsis_build $ graphs_arg $ theta_arg $ store_arg $ seed_arg
      $ shards_arg $ jobs_arg $ bench_json_arg)

let key_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"KEY" ~doc:"Join-graph key in the store.")

let load_store_or_exit store =
  match Csdl.Store.load_result ~resolve_table:Csv_io.read_auto store with
  | Ok s -> s
  | Error fault ->
      Printf.eprintf "error: %s: %s\n" store (Csdl.Fault.error_to_string fault);
      exit 1

let require_key s store key =
  if not (Csdl.Store.mem s key) then begin
    Printf.eprintf "no synopsis %S in %s (have: %s)\n" key store
      (String.concat ", " (Csdl.Store.keys s));
    exit 1
  end

let synopsis_estimate key store pred_left pred_right =
  (* table names recorded in the store are the CSV paths *)
  let s = load_store_or_exit store in
  require_key s store key;
  Printf.printf "estimate for %s: %.17g\n" key
    (Csdl.Store.estimate ~pred_a:pred_left ~pred_b:pred_right s ~key)

let synopsis_estimate_cmd =
  Cmd.v
    (Cmd.info "synopsis-estimate"
       ~doc:
         "Estimate a join size from a persisted synopsis store (the base           CSVs must still be readable at their recorded paths).")
    Term.(
      const synopsis_estimate $ key_arg $ store_arg $ where_left_arg
      $ where_right_arg)

(* ---------------- synopsis-delta ---------------- *)

let insert_left_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "insert-left" ] ~docv:"CSV"
        ~doc:
          "CSV of rows to append to the left table (same header and column \
           types as the stored table).")

let insert_right_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "insert-right" ] ~docv:"CSV"
        ~doc:"CSV of rows to append to the right table.")

let delete_left_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "delete-left" ] ~docv:"I,J,.."
        ~doc:
          "Comma-separated current row indices (0-based, header excluded) \
           to delete from the left table.")

let delete_right_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "delete-right" ] ~docv:"I,J,.."
        ~doc:"Row indices to delete from the right table.")

let out_left_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-left" ] ~docv:"CSV"
        ~doc:
          "Where to write the post-delta left table (default: overwrite the \
           path recorded in the store).")

let out_right_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-right" ] ~docv:"CSV"
        ~doc:"Where to write the post-delta right table.")

let parse_deletes what spec =
  match spec with
  | None -> [||]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun part ->
             let part = String.trim part in
             if part = "" then None
             else
               match int_of_string_opt part with
               | Some i -> Some i
               | None ->
                   Printf.eprintf "error: %s: %S is not a row index\n" what
                     part;
                   exit 2)
      |> Array.of_list

let read_inserts what schema path_opt =
  match path_opt with
  | None -> [||]
  | Some path ->
      let t = Csv_io.read_auto path in
      if not (Schema.equal (Table.schema t) schema) then begin
        Printf.eprintf
          "error: %s: schema of %s does not match the stored table's\n" what
          path;
        exit 2
      end;
      Array.init (Table.cardinality t) (Table.row t)

let synopsis_delta key store insert_left insert_right delete_left delete_right
    out_left out_right =
  let entries =
    match
      Csdl.Synopsis_store.read ~resolve_table:Csv_io.read_auto ~path:store
    with
    | Ok entries -> entries
    | Error fault ->
        Printf.eprintf "error: %s: %s\n" store
          (Csdl.Fault.error_to_string fault);
        exit 1
  in
  let entry =
    match
      List.find_opt
        (fun (e : Csdl.Synopsis_store.stored) -> e.key = key)
        entries
    with
    | Some e -> e
    | None ->
        Printf.eprintf "no synopsis %S in %s (have: %s)\n" key store
          (String.concat ", "
             (List.map
                (fun (e : Csdl.Synopsis_store.stored) -> e.key)
                entries));
        exit 1
  in
  (* the keyed stream the synopsis was drawn from is what makes delta
     maintenance bit-identical to a fresh re-draw; without it recorded
     there is nothing to resume *)
  let base =
    match String.index_opt entry.prng_key ':' with
    | None ->
        Printf.eprintf
          "error: synopsis %S records no usable PRNG key (%S); cannot \
           resume maintenance\n"
          key entry.prng_key;
        exit 1
    | Some i -> (
        let seed_str = String.sub entry.prng_key 0 i in
        let stream =
          String.sub entry.prng_key (i + 1)
            (String.length entry.prng_key - i - 1)
        in
        match int_of_string_opt seed_str with
        | None ->
            Printf.eprintf
              "error: synopsis %S records a malformed PRNG key (%S)\n" key
              entry.prng_key;
            exit 1
        | Some seed ->
            Csdl.Synopsis.base_of_prng (Prng.create_keyed ~seed stream))
  in
  (* reconstruct the sampler-orientation profile from the decoded samples
     (bypassing Store/Estimator keeps the stored orientation rather than
     re-deriving it, so the re-drawn synopsis slots back into the entry) *)
  let sample_a = entry.synopsis.Csdl.Synopsis.sample_a
  and sample_b = entry.synopsis.Csdl.Synopsis.sample_b in
  let profile =
    Csdl.Profile.of_tables sample_a.Csdl.Sample.table
      sample_a.Csdl.Sample.column sample_b.Csdl.Sample.table
      sample_b.Csdl.Sample.column
  in
  let sharded =
    Csdl.Synopsis_shard.of_synopsis ~base ~profile ~shards:entry.shards
      entry.synopsis
  in
  let left_delta =
    {
      Csdl.Synopsis_shard.inserts =
        read_inserts "--insert-left"
          (Table.schema
             (if entry.swapped then sample_b.Csdl.Sample.table
              else sample_a.Csdl.Sample.table))
          insert_left;
      deletes = parse_deletes "--delete-left" delete_left;
    }
  and right_delta =
    {
      Csdl.Synopsis_shard.inserts =
        read_inserts "--insert-right"
          (Table.schema
             (if entry.swapped then sample_a.Csdl.Sample.table
              else sample_b.Csdl.Sample.table))
          insert_right;
      deletes = parse_deletes "--delete-right" delete_right;
    }
  in
  (* CLI deltas are in the original (left, right) orientation; the sharded
     synopsis lives in sampler orientation *)
  let delta =
    if entry.swapped then
      { Csdl.Synopsis_shard.a = right_delta; b = left_delta }
    else { Csdl.Synopsis_shard.a = left_delta; b = right_delta }
  in
  let dirty, span =
    try Clock.time (fun () -> Csdl.Synopsis_shard.apply_delta sharded delta)
    with Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let post = Csdl.Synopsis_shard.profile sharded in
  let table_a = post.Csdl.Profile.a.Csdl.Profile.table
  and table_b = post.Csdl.Profile.b.Csdl.Profile.table in
  let left_table, right_table =
    if entry.swapped then (table_b, table_a) else (table_a, table_b)
  in
  let left_path, right_path =
    let orig_left, orig_right =
      if entry.swapped then (entry.table_b, entry.table_a)
      else (entry.table_a, entry.table_b)
    in
    ( Option.value out_left ~default:orig_left,
      Option.value out_right ~default:orig_right )
  in
  Csv_io.write left_path left_table;
  Csv_io.write right_path right_table;
  let synopsis = Csdl.Synopsis_shard.merge sharded in
  let entry' =
    {
      entry with
      Csdl.Synopsis_store.table_a =
        (if entry.swapped then right_path else left_path);
      table_b = (if entry.swapped then left_path else right_path);
      fingerprint_a = Table.fingerprint table_a;
      fingerprint_b = Table.fingerprint table_b;
      (* refresh the drift sentinels' recorded truths against the
         post-delta tables and re-baseline against the delta-maintained
         synopsis — the same pure functions of the profile and synopsis
         as a fresh build, and the synopsis itself is bit-identical to a
         fresh re-draw, so the rewritten store stays byte-identical to
         rebuilding from scratch *)
      sentinels =
        Csdl.Sentinel.seed
          (if entry.swapped then Csdl.Profile.swap post else post)
        |> Csdl.Sentinel.with_baselines
             (Csdl.Synopsis_flat.of_synopsis synopsis)
             ~swapped:entry.swapped;
      synopsis;
    }
  in
  let entries' =
    List.map
      (fun (e : Csdl.Synopsis_store.stored) ->
        if e.key = key then entry' else e)
      entries
  in
  Csdl.Synopsis_store.write ~path:store entries';
  Printf.printf
    "applied delta to %s: left +%d/-%d -> %s, right +%d/-%d -> %s\n" key
    (Array.length left_delta.Csdl.Synopsis_shard.inserts)
    (Array.length left_delta.Csdl.Synopsis_shard.deletes)
    left_path
    (Array.length right_delta.Csdl.Synopsis_shard.inserts)
    (Array.length right_delta.Csdl.Synopsis_shard.deletes)
    right_path;
  Printf.printf "re-drawn shards: %d/%d; %d sample tuples; store %s updated\n"
    dirty
    (Csdl.Synopsis_shard.shard_count sharded)
    (Csdl.Synopsis.size_tuples synopsis)
    store;
  Printf.eprintf "delta applied in %.3fs wall\n" span.Clock.wall_seconds

let synopsis_delta_cmd =
  Cmd.v
    (Cmd.info "synopsis-delta"
       ~doc:
         "Apply an insert/delete batch to a stored synopsis in place: \
          re-evaluate the per-value hash test on the same keyed PRNG \
          streams for exactly the affected values, rewrite the base CSVs \
          and the store. Estimates afterwards are byte-identical to \
          rebuilding the synopsis from scratch on the post-delta tables.")
    Term.(
      const synopsis_delta $ key_arg $ store_arg $ insert_left_arg
      $ insert_right_arg $ delete_left_arg $ delete_right_arg $ out_left_arg
      $ out_right_arg)

(* ---------------- batch ---------------- *)

let queries_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:
          "Query file: one query per line as 'LEFT ;; RIGHT' (selection \
           predicates on the two tables; an empty side means no selection; \
           '#' comments and blank lines are skipped).")

let batch key store queries_file trace bench_json =
  let obs =
    match trace with
    | None -> Obs.null
    | Some file -> Obs.create ~sink:(Repro_obs.Trace.file file) ()
  in
  let s, load_span =
    Clock.time (fun () -> load_store_or_exit store)
  in
  require_key s store key;
  let contents =
    let ic = open_in_bin queries_file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Repro_benchlib.Batch.parse_queries contents with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" queries_file e;
      exit 1
  | Ok queries ->
      let prov = Provenance.create () in
      let rows =
        Repro_benchlib.Batch.run ~obs ~prov ~store:s ~key
          ~load_wall_seconds:load_span.Clock.wall_seconds queries
      in
      (* stdout is exactly one "<id>: <estimate>" line per query, full
         float precision — byte-comparable against unbatched runs *)
      List.iter
        (fun r ->
          Printf.printf "%s: %.17g\n" r.Repro_benchlib.Batch.b_id
            r.Repro_benchlib.Batch.b_estimate)
        rows;
      let online = Repro_benchlib.Batch.total_online_wall rows in
      Option.iter
        (fun i ->
          Printf.eprintf "synopsis %s: %s, theta=%g, %d tuples%s\n" key
            i.Csdl.Store.i_variant i.Csdl.Store.i_theta i.Csdl.Store.i_tuples
            (if i.Csdl.Store.i_prng_key = "" then ""
             else " (prng " ^ i.Csdl.Store.i_prng_key ^ ")"))
        (Csdl.Store.info s key);
      Printf.eprintf
        "batch: %d queries, load %.6fs (offline), online total %.6fs (mean \
         %.6fs/query)\n"
        (List.length rows) load_span.Clock.wall_seconds online
        (if rows = [] then Float.nan else online /. float_of_int (List.length rows));
      Option.iter
        (fun path ->
          let name = Filename.remove_extension (Filename.basename path) in
          Provenance.write ~path
            (Provenance.artifact ~name (Provenance.records prov));
          Printf.eprintf "provenance: %d records -> %s\n" (List.length rows)
            path)
        bench_json;
      Obs.close obs

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Load one synopsis from a store and answer a file of predicate \
          queries from it in a single process, timing only the online \
          phase per query. Writes one '<id>: <estimate>' line per query to \
          stdout; timing and provenance are reported on stderr / via \
          $(b,--bench-json).")
    Term.(
      const batch $ key_arg $ store_arg $ queries_arg $ trace_arg
      $ bench_json_arg)

(* ---------------- trace report ---------------- *)

let trace_file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace file (written by --trace).")

let folded_arg =
  Arg.(
    value & flag
    & info [ "folded" ]
        ~doc:
          "Emit folded stacks (one 'root;child;leaf MICROSECONDS' line per \
           distinct stack, self time) for flamegraph.pl or speedscope \
           instead of the textual report.")

let report_access_log_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "JSONL access log written by $(b,repro_cli serve --access-log); \
           joins each record with its span tree by request ID and reports \
           orphans on both sides.")

(* Join access-log records with span trees on the request_id span attr.
   Either side may legitimately out-number the other (spans only exist
   for estimate requests; a truncated trace drops spans) — which is
   exactly what the orphan counts surface. *)
let report_request_join records forest =
  let subtree_count =
    let rec go acc (n : Report.node) =
      List.fold_left go (acc + 1) n.Report.children
    in
    go 0
  in
  let by_rid = Hashtbl.create 64 in
  let rec index (n : Report.node) =
    (match
       List.assoc_opt "request_id" n.Report.span.Repro_obs.Trace.attrs
     with
    | Some rid ->
        let prior =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt by_rid rid)
        in
        Hashtbl.replace by_rid rid
          ( fst prior + subtree_count n,
            snd prior +. n.Report.span.Repro_obs.Trace.duration_s )
    | None -> ());
    List.iter index n.Report.children
  in
  List.iter index forest;
  Printf.printf "== request join ==\n";
  let matched = ref 0 in
  List.iter
    (fun (r : Repro_obs.Access_log.record) ->
      match Hashtbl.find_opt by_rid r.id with
      | Some (spans, span_s) ->
          incr matched;
          Hashtbl.remove by_rid r.id;
          Printf.printf "%s %s %s%s wall=%.6fs spans=%d span=%.6fs\n" r.id
            r.verb r.outcome
            (if r.key = "" then "" else " key=" ^ r.key)
            r.wall_s spans span_s
      | None -> ())
    records;
  let orphan_spans = Hashtbl.length by_rid in
  Printf.printf
    "records=%d matched=%d without-spans=%d orphan-span-trees=%d\n"
    (List.length records) !matched
    (List.length records - !matched)
    orphan_spans

let trace_report file folded access_log =
  let reading = Report.read_file file in
  List.iter
    (fun d ->
      Printf.eprintf "%s: skipped line %d: %s\n" file d.Report.line
        d.Report.reason)
    reading.Report.skipped;
  if folded then
    List.iter
      (fun (stack, micros) -> Printf.printf "%s %d\n" stack micros)
      (Report.folded (Report.forest reading.Report.spans))
  else begin
    Format.printf "%a" Report.pp reading;
    match access_log with
    | None -> ()
    | Some path -> (
        match Repro_obs.Access_log.read_file path with
        | Error e ->
            Printf.eprintf "error: %s: %s\n" path e;
            exit 1
        | Ok records ->
            report_request_join records
              (Report.forest reading.Report.spans))
  end

let trace_report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyse a JSONL trace: per-span aggregates (count, total, self, \
          p50/p95/max), the critical path, and optionally folded stacks. \
          With --access-log, additionally join each access-log record \
          with its span tree by request ID. Malformed trace lines are \
          skipped with a diagnostic on stderr, so a trace truncated by a \
          crash still reports.")
    Term.(const trace_report $ trace_file_arg $ folded_arg
          $ report_access_log_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Analyse observability trace files.")
    [ trace_report_cmd ]

(* ---------------- bench diff ---------------- *)

let baseline_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"BASELINE.json" ~doc:"Baseline BENCH artifact.")

let current_arg =
  Arg.(
    required & pos 1 (some file) None
    & info [] ~docv:"CURRENT.json" ~doc:"Candidate BENCH artifact.")

let max_wall_ratio_arg =
  Arg.(
    value & opt float 2.0
    & info [ "max-wall-ratio" ] ~docv:"R"
        ~doc:
          "Fail if a variant's mean wall time exceeds $(docv) times the \
           baseline (wall times under 10ms are never flagged).")

let max_qerr_ratio_arg =
  Arg.(
    value & opt float 1.1
    & info [ "max-qerr-ratio" ] ~docv:"R"
        ~doc:
          "Fail if a variant's median or p95 q-error exceeds $(docv) times \
           the baseline.")

let max_online_wall_ratio_arg =
  Arg.(
    value & opt (some float) None
    & info [ "max-online-wall-ratio" ] ~docv:"R"
        ~doc:
          "Fail if a 'batch-online' group's total online wall time exceeds \
           $(docv) times the baseline (defaults to --max-wall-ratio). The \
           aggregate batch record sits above the 10ms noise floor, so this \
           bound gates the online hot path for real.")

let min_ci_coverage_arg =
  Arg.(
    value & opt (some float) None
    & info [ "min-ci-coverage" ] ~docv:"F"
        ~doc:
          "Fail if a group reporting confidence intervals covers the truth \
           in less than fraction $(docv) of its cells (an absolute floor, \
           not a baseline ratio; groups without intervals are not gated).")

(* Exit codes: 0 = within limits, 1 = regression, 2 = unreadable artifact.
   cmdliner reserves 124+ for its own errors, so these are safe. *)
let load_artifact_or_exit path =
  match Provenance.read path with
  | Ok artifact -> artifact
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2

let bench_diff baseline_path current_path max_wall_ratio max_qerr_ratio
    max_online_wall_ratio min_ci_coverage =
  let baseline = load_artifact_or_exit baseline_path
  and current = load_artifact_or_exit current_path in
  let checks =
    Provenance.diff ?max_online_wall_ratio ?min_ci_coverage ~max_wall_ratio
      ~max_qerr_ratio ~baseline ~current ()
  in
  Provenance.pp_checks Format.std_formatter checks;
  match Provenance.regressions checks with
  | [] ->
      Printf.printf "no regressions (%d checks, %s vs %s)\n"
        (List.length checks) baseline.Provenance.a_name
        current.Provenance.a_name
  | bad ->
      Printf.printf "%d regression(s) against %s\n" (List.length bad)
        baseline.Provenance.a_name;
      exit 1

let bench_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH provenance artifacts per (experiment, variant): \
          median/p95 q-error and mean wall time against ratio limits. Exits \
          0 when within limits, 1 on a regression or lost coverage, 2 on an \
          unreadable artifact.")
    Term.(
      const bench_diff $ baseline_arg $ current_arg $ max_wall_ratio_arg
      $ max_qerr_ratio_arg $ max_online_wall_ratio_arg $ min_ci_coverage_arg)

(* ---------------- bench merge ---------------- *)

let merge_out_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"OUT.json"
        ~doc:"Merged artifact to write; its name is the basename sans \
              extension.")

let merge_inputs_arg =
  Arg.(
    non_empty & pos_right 0 file []
    & info [] ~docv:"IN.json" ~doc:"Input BENCH artifacts, in order.")

let bench_merge out_path input_paths =
  (* a record's identity for collision purposes: two artifacts carrying the
     same (experiment, variant, query) would silently double-weight that
     group's summaries, so overlapping inputs are a hard error. Duplicates
     *within* one artifact are legitimate (multi-run records). *)
  let seen = Hashtbl.create 64 in
  let records =
    List.concat
      (List.mapi
         (fun idx path ->
           let records = (load_artifact_or_exit path).Provenance.a_records in
           List.iter
             (fun (r : Provenance.record) ->
               let k = (r.experiment, r.variant, r.query) in
               match Hashtbl.find_opt seen k with
               | Some (first_idx, first_path) when first_idx <> idx ->
                   let e, v, q = k in
                   Printf.eprintf
                     "error: record (experiment=%s, variant=%s, query=%s) \
                      appears in both %s and %s; refusing to merge \
                      overlapping artifacts\n"
                     e v q first_path path;
                   exit 2
               | Some _ -> ()
               | None -> Hashtbl.add seen k (idx, path))
             records;
           records)
         input_paths)
  in
  let name = Filename.remove_extension (Filename.basename out_path) in
  Provenance.write ~path:out_path (Provenance.artifact ~name records);
  Printf.eprintf "merged %d records from %d artifacts -> %s\n"
    (List.length records) (List.length input_paths) out_path

let bench_merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Concatenate the records of several BENCH artifacts into one, \
          recomputing summaries — e.g. to combine the bench-smoke and \
          batch-workload artifacts into a single baseline for $(b,bench \
          diff). Exits 2 on an unreadable input or when two different \
          inputs carry the same (experiment, variant, query) record key \
          (which would double-weight that group's summaries).")
    Term.(const bench_merge $ merge_out_arg $ merge_inputs_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Benchmark provenance artifacts.")
    [ bench_diff_cmd; bench_merge_cmd ]

(* ---------------- serve / client ---------------- *)

module Server = Repro_server.Server
module Server_client = Repro_server.Client
module Protocol = Repro_server.Protocol

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind or connect to.")

let port_arg =
  Arg.(
    value & opt int 7447
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 binds an ephemeral one).")

let serve_jobs_arg =
  Arg.(
    value & opt int 4
    & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains serving requests.")

let queue_capacity_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:"Admission queue slots; beyond this, connections are shed.")

let queue_policy_arg =
  Arg.(
    value
    & opt (enum [ ("reject", Repro_server.Admission.Reject);
                  ("drop-oldest", Repro_server.Admission.Drop_oldest) ])
        Repro_server.Admission.Reject
    & info [ "queue-policy" ] ~docv:"POLICY"
        ~doc:"What to shed when the queue is full: the new arrival \
              ($(b,reject)) or the longest-waiting one ($(b,drop-oldest)).")

let deadline_arg =
  Arg.(
    value & opt float 1.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Default per-request deadline (anchored at accept time for \
              the first request on a connection).")

let cache_capacity_arg =
  Arg.(
    value & opt int 32
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Decoded-synopsis LRU slots; misses re-decode the store file.")

let chaos_arg =
  Arg.(
    value & opt float 0.0
    & info [ "chaos" ] ~docv:"FRACTION"
        ~doc:"Fault-injection mode: corrupt this fraction of synopsis \
              loads (half hard load failures, half silent corruptions the \
              checked estimator must catch). Deterministic per --seed.")

let access_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Write one structured JSONL record per request (request ID, \
           verb, outcome, deadline budget, wall time, cache hit/miss, \
           shard count, degradation rung, estimate); join against a \
           --trace file with $(b,repro_cli trace report --access-log).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write JSONL spans (each tagged with its request ID) plus a \
           final metrics dump to FILE.")

let slo_window_arg =
  Arg.(
    value & opt float 60.0
    & info [ "slo-window" ] ~docv:"SECONDS"
        ~doc:
          "Rolling window behind the $(b,slo) verb and the server.slo.* \
           gauges.")

let drift_limit_arg =
  Arg.(
    value & opt float 8.0
    & info [ "drift-limit" ] ~docv:"QERROR"
        ~doc:
          "Sentinel q-error beyond which a key is reported as drifted \
           (accuracy regression vs the truths recorded at build time).")

let serve_run store host port jobs queue_capacity queue_policy deadline
    cache_capacity chaos seed access_log trace slo_window drift_limit =
  let obs =
    match trace with
    | None -> Obs.create ()
    | Some path -> Obs.create ~sink:(Repro_obs.Trace.file path) ()
  in
  let engine_config =
    {
      Repro_server.Engine.default_config with
      cache_capacity;
      chaos;
      seed;
      drift_limit;
    }
  in
  match
    Repro_server.Engine.create ~obs engine_config
      ~resolve_table:Csv_io.read_auto ~store_path:store
  with
  | Error fault ->
      Printf.eprintf "error: %s: %s\n" store (Csdl.Fault.error_to_string fault);
      exit 1
  | Ok engine ->
      let log =
        Option.map
          (fun path ->
            Repro_obs.Access_log.create ~path ~sleep:Clock.sleepf)
          access_log
      in
      let config =
        {
          (Server.default_config ~port) with
          host;
          jobs;
          queue_capacity;
          queue_policy;
          default_deadline_s = deadline;
        }
      in
      let srv =
        Server.create ~obs ?access_log:log ~slo_window_s:slo_window config
          engine
      in
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let stop _ = Server.stop srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Printf.eprintf "serving %d synopses from %s on %s:%d (%d workers%s)\n%!"
        (List.length (Repro_server.Engine.keys engine))
        store host (Server.port srv) jobs
        (if chaos > 0.0 then Printf.sprintf ", chaos %g" chaos else "");
      List.iter
        (fun d ->
          match d.Repro_server.Engine.d_fault with
          | Some fault ->
              Printf.eprintf "warning: %s\n%!"
                (Csdl.Fault.error_to_string fault)
          | None -> ())
        (Repro_server.Engine.drift_status engine);
      Server.serve srv;
      (* workers are joined; the log's writer domain drains what they
         pushed *)
      Option.iter Repro_obs.Access_log.close log;
      Obs.close obs;
      Printf.eprintf "shutdown complete\n%!"

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the estimation daemon: load a synopsis store and answer \
          line-oriented estimation queries over TCP, with per-request \
          deadlines, bounded admission (explicit load shedding), per-key \
          circuit breakers, graceful degradation to the independence \
          prior, and end-to-end request telemetry (wire-propagated \
          request IDs, JSONL access log, rolling SLO windows, accuracy \
          drift sentinels). SIGTERM drains the queue and exits 0.")
    Term.(
      const serve_run $ store_arg $ host_arg $ port_arg $ serve_jobs_arg
      $ queue_capacity_arg $ queue_policy_arg $ deadline_arg
      $ cache_capacity_arg $ chaos_arg $ seed_arg $ access_log_arg
      $ serve_trace_arg $ slo_window_arg $ drift_limit_arg)

let client_queries_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:
          "Query file in batch format ('LEFT ;; RIGHT' per line); replies \
           print as '<id>: <estimate>' lines, byte-comparable to \
           $(b,repro_cli batch).")

let client_key_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "key" ] ~docv:"KEY" ~doc:"Join-graph key to query.")

let verb_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "verb" ] ~docv:"VERB"
        ~doc:"Send one protocol verb (health, ready, keys, metrics, slo, \
              reload) and print the reply.")

let client_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-request deadline override.")

(* first ";;" splits left/right, as in batch query files *)
let split_query_line s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = ';' && s.[i + 1] = ';' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 2) (n - i - 2)))

(* Send the raw predicate text and let the server parse it — the same
   parser batch mode uses, so semantics cannot drift. Ids number surviving
   lines exactly like Batch.parse_queries. *)
let client_run_queries c ~key ~deadline_s contents =
  let failures = ref 0 in
  let i = ref 0 in
  String.split_on_char '\n' contents
  |> List.iter (fun raw ->
         let s = String.trim raw in
         if s <> "" && s.[0] <> '#' then begin
           let id = Repro_benchlib.Batch.query_id !i in
           incr i;
           let pred_a, pred_b =
             match split_query_line s with
             | left, Some right -> (left, right)
             | left, None -> (left, "")
           in
           match
             Server_client.estimate c ?deadline_s ~pred_a ~pred_b ~key ()
           with
           | Ok (Protocol.R_ok v) -> Printf.printf "%s: %.17g\n" id v
           | Ok (Protocol.R_degraded (v, trace)) ->
               incr failures;
               Printf.printf "%s: degraded %.17g (%s)\n" id v trace
           | Ok (Protocol.R_deadline_exceeded what) ->
               incr failures;
               Printf.printf "%s: deadline_exceeded (%s)\n" id what
           | Ok (Protocol.R_shed retry) ->
               incr failures;
               Printf.printf "%s: shed (retry_after %gs)\n" id retry
           | Ok (Protocol.R_err e) ->
               Printf.eprintf "error: %s: %s\n" id e;
               exit 1
           | Error e ->
               Printf.eprintf "error: %s: bad reply: %s\n" id e;
               exit 1
         end);
  !failures

let client_run host port verb queries key deadline_s where_left where_right =
  let c = Server_client.connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Server_client.close c)
    (fun () ->
      match (verb, queries, key) with
      | Some v, _, _ -> (
          match v with
          | "metrics" -> (
              match Server_client.metrics c with
              | Ok body -> print_string body
              | Error e ->
                  Printf.eprintf "error: %s\n" e;
                  exit 1)
          | "health" | "ready" | "keys" | "slo" ->
              print_endline (Server_client.raw c v)
          | "reload" -> (
              match Server_client.reload c with
              | Ok line -> print_endline line
              | Error e ->
                  Printf.eprintf "error: %s\n" e;
                  exit 1)
          | v ->
              Printf.eprintf "error: unknown verb %S\n" v;
              exit 1)
      | None, Some qfile, Some key ->
          let contents =
            let ic = open_in_bin qfile in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let failures = client_run_queries c ~key ~deadline_s contents in
          if failures > 0 then
            Printf.eprintf "%d queries did not take the full CSDL path\n"
              failures
      | None, None, Some key -> (
          let some_if_nontrivial p =
            match p with Predicate.True -> None | p -> Some (Predicate.to_string p)
          in
          match
            Server_client.estimate c ?deadline_s
              ?pred_a:(some_if_nontrivial where_left)
              ?pred_b:(some_if_nontrivial where_right)
              ~key ()
          with
          | Ok (Protocol.R_ok v) -> Printf.printf "%.17g\n" v
          | Ok (Protocol.R_degraded (v, trace)) ->
              Printf.printf "degraded %.17g (%s)\n" v trace
          | Ok (Protocol.R_deadline_exceeded what) ->
              Printf.printf "deadline_exceeded (%s)\n" what
          | Ok (Protocol.R_shed retry) ->
              Printf.printf "shed (retry_after %gs)\n" retry
          | Ok (Protocol.R_err e) ->
              Printf.eprintf "error: %s\n" e;
              exit 1
          | Error e ->
              Printf.eprintf "error: bad reply: %s\n" e;
              exit 1)
      | None, _, None ->
          Printf.eprintf
            "error: need --key (with optional --queries) or --verb\n";
          exit 1)

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running estimation daemon. With --queries, replays a \
          batch query file and prints '<id>: <estimate>' lines \
          byte-comparable to $(b,repro_cli batch); with --verb, sends one \
          protocol verb (health, ready, keys, metrics, slo, reload).")
    Term.(
      const client_run $ host_arg $ port_arg $ verb_arg $ client_queries_arg
      $ client_key_arg $ client_deadline_arg $ where_left_arg
      $ where_right_arg)

(* ---------------- workload ---------------- *)

let workload scale seed =
  let d = Repro_datagen.Imdb.generate ~scale ~seed () in
  Printf.printf "%-8s %-12s %-10s %s\n" "query" "jvd" "true size" "predicates";
  List.iter
    (fun (q : Repro_datagen.Job_workload.query) ->
      Printf.printf "%-8s %-12.6f %-10d %s / %s\n"
        q.Repro_datagen.Job_workload.name
        (Repro_datagen.Job_workload.query_jvd q)
        (Repro_datagen.Job_workload.true_size q)
        (Predicate.to_string q.Repro_datagen.Job_workload.a.Join.predicate)
        (Predicate.to_string q.Repro_datagen.Job_workload.b.Join.predicate))
    (Repro_datagen.Job_workload.two_table_queries d)

let workload_cmd =
  Cmd.v
    (Cmd.info "workload"
       ~doc:"List the JOB-derived benchmark queries with jvd and true sizes.")
    Term.(const workload $ scale_arg $ seed_arg)

let () =
  let doc = "Correlated sampling for join size estimation (ICDE 2020 repro)." in
  let info = Cmd.info "repro_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_imdb_cmd;
            generate_tpch_cmd;
            inspect_cmd;
            estimate_cmd;
            metrics_cmd;
            bakeoff_cmd;
            trace_cmd;
            bench_cmd;
            synopsis_build_cmd;
            synopsis_estimate_cmd;
            synopsis_delta_cmd;
            batch_cmd;
            serve_cmd;
            client_cmd;
            workload_cmd;
          ]))
